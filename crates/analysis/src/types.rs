//! Program indexing and lightweight type resolution.
//!
//! The analyses need to know, for every expression that denotes an object,
//! the *simple name* of its static reference type — enough to look up state
//! spaces, resolve call targets and fetch API specifications. This module
//! builds a [`ProgramIndex`] over the parsed compilation units and exposes a
//! per-method [`TypeEnv`] for expression typing.

use java_syntax::ast::*;
use spec_lang::stdlib::ApiRegistry;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a method in the program: declaring class + method name.
///
/// Overloads are not distinguished — the benchmark corpus never overloads a
/// method whose specification matters, matching the paper's per-name method
/// summaries.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId {
    /// Simple name of the declaring class.
    pub class: String,
    /// Method name.
    pub method: String,
}

impl MethodId {
    /// Creates a method id.
    pub fn new(class: impl Into<String>, method: impl Into<String>) -> MethodId {
        MethodId { class: class.into(), method: method.into() }
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.method)
    }
}

/// The signature information the analyses need about a method.
#[derive(Debug, Clone)]
pub struct MethodInfo {
    /// Identity.
    pub id: MethodId,
    /// Parameter names and reference-type simple names (`None` for
    /// primitives).
    pub params: Vec<(String, Option<String>)>,
    /// Simple name of the reference return type; `None` for `void`,
    /// primitives, or constructors.
    pub return_type: Option<String>,
    /// Whether the method is `static` (no receiver).
    pub is_static: bool,
    /// Whether this is a constructor.
    pub is_constructor: bool,
    /// Whether a body is present.
    pub has_body: bool,
}

/// Where a call site resolves to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Callee {
    /// A method defined in the program under analysis.
    Program(MethodId),
    /// A library method from the [`ApiRegistry`].
    Api {
        /// Declaring API type.
        type_name: String,
        /// Method name.
        method: String,
    },
    /// Unresolvable (e.g. calls on unknown types); analyses treat these
    /// conservatively.
    Unknown {
        /// The method name as written.
        method: String,
    },
}

impl fmt::Display for Callee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Callee::Program(id) => write!(f, "{id}"),
            Callee::Api { type_name, method } => write!(f, "{type_name}.{method} [api]"),
            Callee::Unknown { method } => write!(f, "?.{method}"),
        }
    }
}

/// An index over all classes, fields and methods of a program.
#[derive(Debug, Clone, Default)]
pub struct ProgramIndex {
    /// class -> field -> reference-type simple name (None for primitives).
    fields: BTreeMap<String, BTreeMap<String, Option<String>>>,
    /// (class, method) -> info.
    methods: BTreeMap<MethodId, MethodInfo>,
    /// class names in declaration order.
    classes: Vec<String>,
}

/// The simple reference-type name of a [`TypeRef`], or `None` for
/// primitives/void/arrays-of-primitives.
pub fn ref_type_name(ty: &TypeRef) -> Option<String> {
    match ty {
        TypeRef::Named { name, .. } => Some(name.simple().to_string()),
        TypeRef::Array(inner) => ref_type_name(inner).map(|n| format!("{n}[]")),
        TypeRef::Primitive(_) | TypeRef::Void | TypeRef::Wildcard => None,
    }
}

impl ProgramIndex {
    /// Builds the index from compilation units.
    pub fn build<'a>(units: impl IntoIterator<Item = &'a CompilationUnit>) -> ProgramIndex {
        let mut idx = ProgramIndex::default();
        for unit in units {
            for t in &unit.types {
                idx.classes.push(t.name.clone());
                let fields = idx.fields.entry(t.name.clone()).or_default();
                for f in t.fields() {
                    fields.insert(f.name.clone(), ref_type_name(&f.ty));
                }
                for m in t.methods() {
                    let id = MethodId::new(&t.name, &m.name);
                    let info = MethodInfo {
                        id: id.clone(),
                        params: m
                            .params
                            .iter()
                            .map(|p| (p.name.clone(), ref_type_name(&p.ty)))
                            .collect(),
                        return_type: if m.is_constructor() {
                            Some(t.name.clone())
                        } else {
                            m.return_type.as_ref().and_then(ref_type_name)
                        },
                        is_static: m.modifiers.is_static,
                        is_constructor: m.is_constructor(),
                        has_body: m.body.is_some(),
                    };
                    idx.methods.insert(id, info);
                }
            }
        }
        idx
    }

    /// All class names in declaration order.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Whether `class` is declared in the program.
    pub fn has_class(&self, class: &str) -> bool {
        self.fields.contains_key(class)
    }

    /// Looks up a method.
    pub fn method(&self, id: &MethodId) -> Option<&MethodInfo> {
        self.methods.get(id)
    }

    /// Finds a method by name in a class.
    pub fn method_in(&self, class: &str, method: &str) -> Option<&MethodInfo> {
        self.methods.get(&MethodId::new(class, method))
    }

    /// Finds methods by name across all classes (for unqualified calls).
    pub fn methods_named<'a>(&'a self, method: &'a str) -> impl Iterator<Item = &'a MethodInfo> {
        self.methods.values().filter(move |m| m.id.method == method)
    }

    /// The reference type of a field, or `None` if unknown/primitive.
    pub fn field_type(&self, class: &str, field: &str) -> Option<String> {
        self.fields.get(class)?.get(field).cloned().flatten()
    }

    /// Whether the field exists at all.
    pub fn has_field(&self, class: &str, field: &str) -> bool {
        self.fields.get(class).is_some_and(|f| f.contains_key(field))
    }

    /// Iterates over all methods.
    pub fn methods(&self) -> impl Iterator<Item = &MethodInfo> {
        self.methods.values()
    }

    /// Resolves a call with receiver type `recv_ty` and method name `name`
    /// against the program first, then the API registry, then by unqualified
    /// program-wide search.
    pub fn resolve_call(&self, api: &ApiRegistry, recv_ty: Option<&str>, name: &str) -> Callee {
        if let Some(ty) = recv_ty {
            if let Some(m) = self.method_in(ty, name) {
                return Callee::Program(m.id.clone());
            }
            if api.get(ty, name).is_some() {
                return Callee::Api { type_name: ty.to_string(), method: name.to_string() };
            }
        } else {
            // Unqualified: unique program method wins, then unique API method.
            let mut hits = self.methods_named(name);
            if let Some(first) = hits.next() {
                if hits.next().is_none() {
                    return Callee::Program(first.id.clone());
                }
            }
            if let Some(m) = api.get_by_name(name) {
                return Callee::Api { type_name: m.type_name.clone(), method: name.to_string() };
            }
        }
        // Receiver type known but method not found there: fall back to a
        // unique API method of that name (interfaces are often elided in the
        // subset corpus).
        if let Some(m) = api.get_by_name(name) {
            return Callee::Api { type_name: m.type_name.clone(), method: name.to_string() };
        }
        Callee::Unknown { method: name.to_string() }
    }
}

/// A per-method typing environment mapping locals/params/fields to simple
/// reference-type names.
#[derive(Debug, Clone)]
pub struct TypeEnv<'a> {
    index: &'a ProgramIndex,
    api: &'a ApiRegistry,
    /// The class declaring the current method.
    pub class: String,
    locals: BTreeMap<String, Option<String>>,
}

impl<'a> TypeEnv<'a> {
    /// Creates the environment for a method: parameters are pre-bound.
    pub fn for_method(
        index: &'a ProgramIndex,
        api: &'a ApiRegistry,
        class: &str,
        method: &MethodDecl,
    ) -> TypeEnv<'a> {
        let mut locals = BTreeMap::new();
        for p in &method.params {
            locals.insert(p.name.clone(), ref_type_name(&p.ty));
        }
        TypeEnv { index, api, class: class.to_string(), locals }
    }

    /// Binds a local variable's declared type.
    pub fn bind_local(&mut self, name: &str, ty: &TypeRef) {
        self.locals.insert(name.to_string(), ref_type_name(ty));
    }

    /// Binds a local to a known simple type name (or unknown).
    pub fn bind_local_name(&mut self, name: &str, ty: Option<String>) {
        self.locals.insert(name.to_string(), ty);
    }

    /// The type of a local/parameter, if it is a known reference type.
    pub fn local_type(&self, name: &str) -> Option<String> {
        self.locals.get(name).cloned().flatten()
    }

    /// Whether `name` is a declared local/parameter (of any type).
    pub fn is_local(&self, name: &str) -> bool {
        self.locals.contains_key(name)
    }

    /// Infers the simple reference-type name of an expression, or `None`
    /// for primitives and unresolvable expressions.
    pub fn infer(&self, expr: &Expr) -> Option<String> {
        match &expr.kind {
            ExprKind::Literal(_) => None,
            ExprKind::This => Some(self.class.clone()),
            ExprKind::Name(n) => {
                if let Some(t) = self.locals.get(n) {
                    t.clone()
                } else {
                    // Implicit-this field.
                    self.index.field_type(&self.class, n)
                }
            }
            ExprKind::FieldAccess { receiver, name } => {
                let rt = self.infer(receiver)?;
                self.index.field_type(&rt, name)
            }
            ExprKind::Call { receiver, name, .. } => {
                match self.resolve(receiver.as_deref(), name) {
                    Callee::Program(id) => {
                        self.index.method(&id).and_then(|m| m.return_type.clone())
                    }
                    Callee::Api { type_name, method } => {
                        self.api.get(&type_name, &method).and_then(|m| m.return_type.clone())
                    }
                    Callee::Unknown { .. } => None,
                }
            }
            ExprKind::New { ty, .. } => ref_type_name(ty),
            ExprKind::Cast { ty, .. } => ref_type_name(ty),
            ExprKind::Assign { rhs, .. } => self.infer(rhs),
            ExprKind::Conditional { then_expr, else_expr, .. } => {
                self.infer(then_expr).or_else(|| self.infer(else_expr))
            }
            ExprKind::ArrayAccess { array, .. } => {
                let at = self.infer(array)?;
                at.strip_suffix("[]").map(str::to_string)
            }
            ExprKind::Binary { .. }
            | ExprKind::Unary { .. }
            | ExprKind::Postfix { .. }
            | ExprKind::InstanceOf { .. } => None,
        }
    }

    /// The underlying program index.
    pub fn index(&self) -> &'a ProgramIndex {
        self.index
    }

    /// The underlying API registry.
    pub fn api(&self) -> &'a ApiRegistry {
        self.api
    }

    /// Resolves the constructor of `type_name`, when the class is part of
    /// the program.
    pub fn resolve_constructor(&self, type_name: &str) -> Callee {
        match self.index.method_in(type_name, type_name) {
            Some(m) => Callee::Program(m.id.clone()),
            None => Callee::Unknown { method: "<init>".to_string() },
        }
    }

    /// Resolves the callee of a call expression. Unqualified calls try the
    /// current class first, then a program-wide unambiguous-name search
    /// (covering static imports and calls to other classes' static methods).
    pub fn resolve(&self, receiver: Option<&Expr>, name: &str) -> Callee {
        match receiver {
            Some(r) => self.index.resolve_call(self.api, self.infer(r).as_deref(), name),
            None => {
                let own = self.index.resolve_call(self.api, Some(&self.class), name);
                if matches!(own, Callee::Unknown { .. }) {
                    self.index.resolve_call(self.api, None, name)
                } else {
                    own
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::standard_api;

    fn setup(src: &str) -> (CompilationUnit, ProgramIndex) {
        let unit = parse(src).unwrap();
        let index = ProgramIndex::build([&unit]);
        (unit, index)
    }

    const ROW_SRC: &str = r#"class Row {
        Collection<Integer> entries;
        int width;
        Iterator<Integer> createColIter() { return entries.iterator(); }
        void add(int val) {}
        static Row parseCSVRow(String text) { return new Row(); }
    }"#;

    #[test]
    fn index_collects_fields_and_methods() {
        let (_, idx) = setup(ROW_SRC);
        assert!(idx.has_class("Row"));
        assert_eq!(idx.field_type("Row", "entries").as_deref(), Some("Collection"));
        assert_eq!(idx.field_type("Row", "width"), None); // primitive
        assert!(idx.has_field("Row", "width"));
        let m = idx.method_in("Row", "createColIter").unwrap();
        assert_eq!(m.return_type.as_deref(), Some("Iterator"));
        assert!(!m.is_static);
        let p = idx.method_in("Row", "parseCSVRow").unwrap();
        assert!(p.is_static);
    }

    #[test]
    fn constructor_returns_its_class() {
        let (_, idx) = setup("class Box { Box() {} }");
        let c = idx.method_in("Box", "Box").unwrap();
        assert!(c.is_constructor);
        assert_eq!(c.return_type.as_deref(), Some("Box"));
    }

    #[test]
    fn infers_chained_call_types() {
        let (unit, idx) = setup(&format!(
            "{ROW_SRC}\nclass App {{ void m(Row r) {{ Object x = r.createColIter().next(); }} }}"
        ));
        let api = standard_api();
        let app = unit.type_named("App").unwrap();
        let m = app.method_named("m").unwrap();
        let env = TypeEnv::for_method(&idx, &api, "App", m);
        // r: Row
        let body = m.body.as_ref().unwrap();
        if let StmtKind::LocalVar { init: Some(e), .. } = &body.stmts[0].kind {
            // r.createColIter() : Iterator ; .next() : Object (API model)
            assert_eq!(env.infer(e).as_deref(), Some("Object"));
            if let ExprKind::Call { receiver: Some(inner), .. } = &e.kind {
                assert_eq!(env.infer(inner).as_deref(), Some("Iterator"));
            }
        } else {
            panic!("expected local var");
        }
    }

    #[test]
    fn resolves_program_api_and_unknown() {
        let (unit, idx) = setup(ROW_SRC);
        let api = standard_api();
        let m = unit.type_named("Row").unwrap().method_named("createColIter").unwrap();
        let env = TypeEnv::for_method(&idx, &api, "Row", m);
        // entries.iterator() resolves to the API Collection.iterator.
        if let StmtKind::Return(Some(e)) = &m.body.as_ref().unwrap().stmts[0].kind {
            if let ExprKind::Call { receiver, name, .. } = &e.kind {
                let callee = env.resolve(receiver.as_deref(), name);
                assert_eq!(
                    callee,
                    Callee::Api { type_name: "Collection".into(), method: "iterator".into() }
                );
            }
        }
        // Unqualified program call.
        assert_eq!(
            idx.resolve_call(&api, None, "createColIter"),
            Callee::Program(MethodId::new("Row", "createColIter"))
        );
        // Unknown.
        assert!(matches!(
            idx.resolve_call(&api, Some("Mystery"), "frobnicate"),
            Callee::Unknown { .. }
        ));
    }

    #[test]
    fn this_and_implicit_fields_type() {
        let (unit, idx) = setup(ROW_SRC);
        let api = standard_api();
        let m = unit.type_named("Row").unwrap().method_named("createColIter").unwrap();
        let env = TypeEnv::for_method(&idx, &api, "Row", m);
        let this_expr = java_syntax::parse_expr("this").unwrap();
        assert_eq!(env.infer(&this_expr).as_deref(), Some("Row"));
        let field_expr = java_syntax::parse_expr("entries").unwrap();
        assert_eq!(env.infer(&field_expr).as_deref(), Some("Collection"));
    }

    #[test]
    fn locals_shadow_fields() {
        let (_, idx) = setup(ROW_SRC);
        let api = standard_api();
        let unit = parse("class App { void m() {} }").unwrap();
        let m = unit.type_named("App").unwrap().method_named("m").unwrap();
        let mut env = TypeEnv::for_method(&idx, &api, "Row", m);
        env.bind_local_name("entries", Some("Stream".into()));
        let e = java_syntax::parse_expr("entries").unwrap();
        assert_eq!(env.infer(&e).as_deref(), Some("Stream"));
    }

    #[test]
    fn fallback_to_unique_api_method_when_type_unknown() {
        let (_, idx) = setup("class A {}");
        let api = standard_api();
        // `it.next()` where `it`'s type didn't resolve.
        assert_eq!(
            idx.resolve_call(&api, Some("SomethingElse"), "next"),
            Callee::Api { type_name: "Iterator".into(), method: "next".into() }
        );
    }
}
