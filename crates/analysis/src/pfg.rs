//! The Permissions Flow Graph (PFG) — the paper's program abstraction
//! (§3.1, Figures 5–7).
//!
//! A PFG is a directed graph of the flow of permissions in one method.
//! Permission flow matches data flow except that (1) at call sites and field
//! assignments some permission is *retained* in the caller (modelled by
//! [`PfgNodeKind::Split`] fan-out into the call/write plus a retained path),
//! and (2) permission flows back *out* of calls (modelled by
//! [`PfgNodeKind::CallPost`] feeding a [`PfgNodeKind::Merge`]).
//!
//! Construction runs over the event-CFG with a local must-alias analysis:
//! each tracked object gets a token, locals map to tokens, and reassignments
//! re-point the map. Join points (including loop heads, giving the back
//! edges of Figure 6) create merge nodes per live token.

use crate::alias::{AliasMap, AliasToken, TokenSource};
use crate::cfg::{BlockId, Cfg, Terminator};
use crate::events::{Event, EventKind, Operand, Place};
use crate::types::{Callee, MethodId, ProgramIndex, TypeEnv};
use java_syntax::ast::{ExprId, MethodDecl};
use java_syntax::Span;
use spec_lang::ApiRegistry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Index of a node within its [`Pfg`].
pub type NodeId = usize;

/// The role a permission plays at a call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallRole {
    /// The receiver object.
    Receiver,
    /// The i-th argument.
    Arg(usize),
}

impl std::fmt::Display for CallRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallRole::Receiver => f.write_str("this"),
            CallRole::Arg(i) => write!(f, "arg{i}"),
        }
    }
}

/// What a PFG node represents.
#[derive(Debug, Clone, PartialEq)]
pub enum PfgNodeKind {
    /// Permission available to a parameter at the method's precondition.
    ParamPre {
        /// Parameter name (`this` for the receiver).
        name: String,
    },
    /// Permission returned to a parameter at the postcondition.
    ParamPost {
        /// Parameter name (`this` for the receiver).
        name: String,
    },
    /// Permission attached to the method's return value.
    ResultPost,
    /// A permission split point (before calls and field writes).
    Split,
    /// A permission merge point (after calls, at control-flow joins).
    Merge,
    /// Permission required by a callee's parameter at a call site.
    CallPre {
        /// Resolved callee.
        callee: Callee,
        /// Which parameter.
        role: CallRole,
        /// The call expression this belongs to.
        site: ExprId,
    },
    /// Permission returned by a callee's parameter after the call.
    CallPost {
        /// Resolved callee.
        callee: Callee,
        /// Which parameter.
        role: CallRole,
        /// The call expression this belongs to.
        site: ExprId,
    },
    /// Permission attached to a call's return value.
    CallResult {
        /// Resolved callee.
        callee: Callee,
        /// The call expression this belongs to.
        site: ExprId,
    },
    /// A freshly constructed object (`new` returns `unique` — heuristic H1).
    New {
        /// Resolved constructor, when in-program.
        callee: Callee,
    },
    /// A field read — a permission source.
    FieldRead {
        /// Field name.
        field: String,
    },
    /// A field write — a permission sink (no outgoing edges).
    FieldWrite {
        /// Field name.
        field: String,
    },
    /// A branch-sensitive state refinement point: on this control-flow
    /// edge the object is known (by a dynamic state test such as
    /// `hasNext()`) to be in `state`. Pass-through for permissions; the
    /// probabilistic model may attach state evidence here. ANEK proper is
    /// branch-insensitive (§4.2) — these nodes implement the paper's
    /// future-work extension and are inert unless enabled.
    Refine {
        /// The indicated abstract state.
        state: String,
    },
}

/// One node of the PFG.
#[derive(Debug, Clone)]
pub struct PfgNode {
    /// This node's id.
    pub id: NodeId,
    /// What it represents.
    pub kind: PfgNodeKind,
    /// Simple type name of the object whose permission flows here.
    pub type_name: Option<String>,
    /// Source location.
    pub span: Span,
    /// For field reads/writes: the node holding the *receiver* permission at
    /// access time (the dotted edge of Figure 7).
    pub receiver_link: Option<NodeId>,
}

/// Pre/post nodes for one parameter.
#[derive(Debug, Clone)]
pub struct ParamNodes {
    /// Parameter name (`this` for the receiver).
    pub name: String,
    /// Simple type name.
    pub type_name: String,
    /// Precondition node.
    pub pre: NodeId,
    /// Postcondition node.
    pub post: NodeId,
}

/// The permissions flow graph of one method.
#[derive(Debug, Clone)]
pub struct Pfg {
    /// Which method this graph describes.
    pub method: MethodId,
    /// All nodes.
    pub nodes: Vec<PfgNode>,
    /// Directed edges.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Reference-typed parameters (receiver first when present).
    pub params: Vec<ParamNodes>,
    /// Post node of the return value, when reference-typed.
    pub result: Option<(String, NodeId)>,
    /// Nodes that were targets of `synchronized` blocks (heuristic H5).
    pub sync_targets: Vec<NodeId>,
    outgoing: Vec<Vec<NodeId>>,
    incoming: Vec<Vec<NodeId>>,
}

impl Pfg {
    /// Builds the PFG for `method` of `class` (branch-insensitive, as in
    /// the paper).
    pub fn build(index: &ProgramIndex, api: &ApiRegistry, class: &str, method: &MethodDecl) -> Pfg {
        Pfg::build_with_refinement(index, api, class, method, false)
    }

    /// Builds the PFG, optionally inserting [`PfgNodeKind::Refine`] nodes at
    /// dynamic state tests (the branch-sensitivity extension the paper
    /// leaves as future work; changes graph topology, so it is opt-in).
    pub fn build_with_refinement(
        index: &ProgramIndex,
        api: &ApiRegistry,
        class: &str,
        method: &MethodDecl,
        refine: bool,
    ) -> Pfg {
        let mut env = TypeEnv::for_method(index, api, class, method);
        let cfg = Cfg::build(method, &mut env);
        let mut b = Builder::new(index, api, class, method);
        b.enable_refine = refine;
        b.run(&cfg)
    }

    /// Reassembles a PFG from its serialized parts, recomputing the
    /// adjacency lists from the edge list (the inverse of persisting the
    /// public fields — used by the on-disk artifact store). The result is
    /// structurally identical to the originally built graph.
    pub fn from_parts(
        method: MethodId,
        nodes: Vec<PfgNode>,
        edges: Vec<(NodeId, NodeId)>,
        params: Vec<ParamNodes>,
        result: Option<(String, NodeId)>,
        sync_targets: Vec<NodeId>,
    ) -> Pfg {
        let n = nodes.len();
        let mut outgoing = vec![Vec::new(); n];
        let mut incoming = vec![Vec::new(); n];
        for &(a, b) in &edges {
            outgoing[a].push(b);
            incoming[b].push(a);
        }
        Pfg { method, nodes, edges, params, result, sync_targets, outgoing, incoming }
    }

    /// Nodes with an edge from `id`.
    pub fn outgoing(&self, id: NodeId) -> &[NodeId] {
        &self.outgoing[id]
    }

    /// Nodes with an edge to `id`.
    pub fn incoming(&self, id: NodeId) -> &[NodeId] {
        &self.incoming[id]
    }

    /// Whether `id` is a split node (multiple outgoing edges mean permission
    /// splitting) as opposed to a branch fan-out (paper L1 distinguishes the
    /// two).
    pub fn is_split(&self, id: NodeId) -> bool {
        matches!(self.nodes[id].kind, PfgNodeKind::Split)
    }

    /// All call-site pre/post/result nodes grouped per callee occurrence.
    pub fn call_nodes(&self) -> impl Iterator<Item = &PfgNode> {
        self.nodes.iter().filter(|n| {
            matches!(
                n.kind,
                PfgNodeKind::CallPre { .. }
                    | PfgNodeKind::CallPost { .. }
                    | PfgNodeKind::CallResult { .. }
            )
        })
    }

    /// Renders the graph in Graphviz DOT format (used to regenerate the
    /// paper's Figures 6 and 7).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph pfg {\n  rankdir=TB;\n");
        for n in &self.nodes {
            let label = match &n.kind {
                PfgNodeKind::ParamPre { name } => format!("PRE {name}"),
                PfgNodeKind::ParamPost { name } => format!("POST {name}"),
                PfgNodeKind::ResultPost => "POST result".to_string(),
                PfgNodeKind::Split => "SPLIT".to_string(),
                PfgNodeKind::Merge => "MERGE".to_string(),
                PfgNodeKind::CallPre { callee, role, .. } => format!("PRE {role} {callee}"),
                PfgNodeKind::CallPost { callee, role, .. } => format!("POST {role} {callee}"),
                PfgNodeKind::CallResult { callee, .. } => format!("RESULT {callee}"),
                PfgNodeKind::New { .. } => "NEW".to_string(),
                PfgNodeKind::FieldRead { field } => format!("READ .{field}"),
                PfgNodeKind::FieldWrite { field } => format!("WRITE .{field}"),
                PfgNodeKind::Refine { state } => format!("REFINE {state}"),
            };
            let shape = match &n.kind {
                PfgNodeKind::Split | PfgNodeKind::Merge => "diamond",
                PfgNodeKind::FieldRead { .. } | PfgNodeKind::FieldWrite { .. } => "box",
                _ => "ellipse",
            };
            let _ = writeln!(s, "  n{} [label=\"{}\", shape={}];", n.id, dot_escape(&label), shape);
            if let Some(r) = n.receiver_link {
                let _ = writeln!(s, "  n{} -> n{} [style=dotted];", n.id, r);
            }
        }
        // Emit edges in sorted order so the dump is independent of build
        // order (nodes already are: they are emitted by ascending id).
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        for (a, b) in &edges {
            let _ = writeln!(s, "  n{a} -> n{b};");
        }
        s.push_str("}\n");
        s
    }
}

/// Escapes a node label for a double-quoted DOT string (`"` and `\`).
fn dot_escape(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Flow state at a program point: where each object's permission currently
/// resides, and which places must-alias which objects (see [`crate::alias`]).
#[derive(Debug, Clone, Default)]
struct FlowState {
    node_of: BTreeMap<AliasToken, NodeId>,
    alias: AliasMap,
    type_of: BTreeMap<AliasToken, Option<String>>,
}

struct Builder<'a> {
    #[allow(dead_code)] // kept for future interprocedural extensions
    index: &'a ProgramIndex,
    api: &'a ApiRegistry,
    enable_refine: bool,
    nodes: Vec<PfgNode>,
    edges: Vec<(NodeId, NodeId)>,
    params: Vec<ParamNodes>,
    result: Option<(String, NodeId)>,
    sync_targets: Vec<NodeId>,
    tokens: TokenSource,
    method: MethodId,
    init: FlowState,
    /// Per join block: the merge node created for each token.
    merges: BTreeMap<BlockId, BTreeMap<AliasToken, NodeId>>,
    visited: Vec<bool>,
}

impl<'a> Builder<'a> {
    fn new(
        index: &'a ProgramIndex,
        api: &'a ApiRegistry,
        class: &str,
        method: &MethodDecl,
    ) -> Builder<'a> {
        let mut b = Builder {
            index,
            api,
            enable_refine: false,
            nodes: Vec::new(),
            edges: Vec::new(),
            params: Vec::new(),
            result: None,
            sync_targets: Vec::new(),
            tokens: TokenSource::new(),
            method: MethodId::new(class, &method.name),
            init: FlowState::default(),
            merges: BTreeMap::new(),
            visited: Vec::new(),
        };

        // Receiver pre/post (instance methods only).
        if !method.modifiers.is_static && !method.is_constructor() {
            b.add_param("this", class, Place::This, method.span);
        }
        // Constructors: `this` is the freshly constructed object; model it as
        // a parameter whose pre node behaves like a NEW source.
        if method.is_constructor() {
            b.add_param("this", class, Place::This, method.span);
        }
        for p in &method.params {
            if let Some(ty) = crate::types::ref_type_name(&p.ty) {
                b.add_param(&p.name, &ty, Place::Local(p.name.clone()), p.span);
            }
        }
        // Result post node.
        let ret_ty = if method.is_constructor() {
            None
        } else {
            method.return_type.as_ref().and_then(crate::types::ref_type_name)
        };
        if let Some(ty) = ret_ty {
            let id = b.push_node(PfgNodeKind::ResultPost, Some(ty.clone()), method.span, None);
            b.result = Some((ty, id));
        }
        b
    }

    fn add_param(&mut self, name: &str, ty: &str, place: Place, span: Span) {
        let pre = self.push_node(
            PfgNodeKind::ParamPre { name: name.to_string() },
            Some(ty.to_string()),
            span,
            None,
        );
        let post = self.push_node(
            PfgNodeKind::ParamPost { name: name.to_string() },
            Some(ty.to_string()),
            span,
            None,
        );
        self.params.push(ParamNodes {
            name: name.to_string(),
            type_name: ty.to_string(),
            pre,
            post,
        });
        let tok = self.tokens.fresh();
        self.init.node_of.insert(tok, pre);
        self.init.alias.bind(place, tok);
        self.init.type_of.insert(tok, Some(ty.to_string()));
    }

    fn push_node(
        &mut self,
        kind: PfgNodeKind,
        type_name: Option<String>,
        span: Span,
        receiver_link: Option<NodeId>,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(PfgNode { id, kind, type_name, span, receiver_link });
        id
    }

    fn edge(&mut self, a: NodeId, b: NodeId) {
        self.edges.push((a, b));
    }

    fn run(mut self, cfg: &Cfg) -> Pfg {
        self.visited = vec![false; cfg.blocks.len()];
        // Count predecessors (forward + back edges alike).
        let mut preds = vec![0usize; cfg.blocks.len()];
        for b in 0..cfg.blocks.len() {
            if cfg.blocks[b].term.is_some() {
                for s in cfg.successors(b) {
                    preds[s] += 1;
                }
            }
        }
        let init = self.init.clone();
        self.flow_into(cfg, &preds, cfg.entry, init);

        let n = self.nodes.len();
        let mut outgoing = vec![Vec::new(); n];
        let mut incoming = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            outgoing[a].push(b);
            incoming[b].push(a);
        }
        Pfg {
            method: self.method,
            nodes: self.nodes,
            edges: self.edges,
            params: self.params,
            result: self.result,
            sync_targets: self.sync_targets,
            outgoing,
            incoming,
        }
    }

    /// Delivers `state` into `block`, creating/wiring merge nodes at join
    /// points, and processes the block body on first arrival.
    fn flow_into(&mut self, cfg: &Cfg, preds: &[usize], block: BlockId, state: FlowState) {
        if preds[block] > 1 {
            if let Some(merges) = self.merges.get(&block) {
                // Subsequent arrival (other branch or loop back edge): wire
                // current nodes into the existing merges.
                let merges = merges.clone();
                for (tok, node) in &state.node_of {
                    if let Some(&m) = merges.get(tok) {
                        if *node != m {
                            self.edge(*node, m);
                        }
                    }
                }
                return;
            }
            // First arrival: materialize a merge node per live token.
            let mut map = BTreeMap::new();
            let mut merged = state.clone();
            for (tok, node) in &state.node_of {
                let ty = state.type_of.get(tok).cloned().flatten();
                let m = self.push_node(PfgNodeKind::Merge, ty, cfg.blocks[block].span, None);
                self.edge(*node, m);
                map.insert(*tok, m);
                merged.node_of.insert(*tok, m);
            }
            self.merges.insert(block, map);
            self.process_block(cfg, preds, block, merged);
        } else {
            if self.visited[block] {
                return;
            }
            self.process_block(cfg, preds, block, state);
        }
    }

    fn process_block(&mut self, cfg: &Cfg, preds: &[usize], block: BlockId, mut state: FlowState) {
        self.visited[block] = true;
        let events = cfg.blocks[block].events.clone();
        for ev in &events {
            self.event(ev, &mut state);
        }
        match cfg.blocks[block].term.clone().expect("sealed cfg") {
            Terminator::Goto(t) => self.flow_into(cfg, preds, t, state),
            Terminator::Branch { test, then_blk, else_blk } => {
                let mut then_state = state.clone();
                let mut else_state = state;
                // Dynamic state tests refine the tested object's state on
                // each branch (a pass-through Refine node per side).
                if let Some(test) = &test {
                    if let Callee::Api { type_name, method } = &test.callee {
                        if let Some(am) = self.api.get(type_name, method) {
                            let (t_ind, f_ind) = if test.negated {
                                (&am.spec.false_indicates, &am.spec.true_indicates)
                            } else {
                                (&am.spec.true_indicates, &am.spec.false_indicates)
                            };
                            if let Some(st) = t_ind {
                                then_state = self.refine(
                                    then_state,
                                    &test.operand,
                                    st,
                                    cfg.blocks[block].span,
                                );
                            }
                            if let Some(st) = f_ind {
                                else_state = self.refine(
                                    else_state,
                                    &test.operand,
                                    st,
                                    cfg.blocks[block].span,
                                );
                            }
                        }
                    }
                }
                self.flow_into(cfg, preds, then_blk, then_state);
                self.flow_into(cfg, preds, else_blk, else_state);
            }
            Terminator::Return(op) => {
                // Return value flows into the result-post node.
                if let (Some(op), Some((_, result_post))) = (op, self.result.clone()) {
                    if let Some(node) = self.node_of_operand(&op, &state) {
                        self.edge(node, result_post);
                    }
                }
                // Parameter permissions flow into their post nodes.
                let params = self.params.clone();
                for p in &params {
                    let place =
                        if p.name == "this" { Place::This } else { Place::Local(p.name.clone()) };
                    if let Some(tok) = state.alias.resolve(&place) {
                        if let Some(&node) = state.node_of.get(&tok) {
                            if node != p.post {
                                self.edge(node, p.post);
                            }
                        }
                    }
                }
            }
            Terminator::Exit => {}
        }
    }

    /// Inserts a pass-through refinement node for the tested operand (only
    /// when the branch-sensitivity extension is enabled).
    fn refine(&mut self, mut state: FlowState, op: &Operand, st: &str, span: Span) -> FlowState {
        if !self.enable_refine {
            return state;
        }
        if let Some(tok) = state.alias.resolve(&op.place) {
            if let Some(&cur) = state.node_of.get(&tok) {
                let ty = state.type_of.get(&tok).cloned().flatten();
                let node =
                    self.push_node(PfgNodeKind::Refine { state: st.to_string() }, ty, span, None);
                self.edge(cur, node);
                state.node_of.insert(tok, node);
            }
        }
        state
    }

    fn node_of_operand(&self, op: &Operand, state: &FlowState) -> Option<NodeId> {
        let tok = state.alias.resolve(&op.place)?;
        state.node_of.get(&tok).copied()
    }

    fn token_of(&mut self, op: &Operand, state: &mut FlowState) -> Option<AliasToken> {
        state.alias.resolve(&op.place)
    }

    fn event(&mut self, ev: &Event, state: &mut FlowState) {
        match &ev.kind {
            EventKind::New { type_name, dest, callee, args } => {
                // Arguments to the constructor behave like call arguments.
                let call_args: Vec<(usize, Operand)> = args
                    .iter()
                    .enumerate()
                    .filter_map(|(i, a)| a.clone().map(|a| (i, a)))
                    .collect();
                for (i, arg) in &call_args {
                    self.pass_through_call(
                        arg,
                        callee.clone(),
                        CallRole::Arg(*i),
                        ev.id,
                        ev.span,
                        state,
                    );
                }
                let node = self.push_node(
                    PfgNodeKind::New { callee: callee.clone() },
                    type_name.clone(),
                    ev.span,
                    None,
                );
                let tok = self.tokens.fresh();
                state.node_of.insert(tok, node);
                state.type_of.insert(tok, type_name.clone());
                state.alias.bind(dest.clone(), tok);
            }
            EventKind::Call { callee, receiver, args, dest } => {
                if let Some(recv) = receiver {
                    self.pass_through_call(
                        recv,
                        callee.clone(),
                        CallRole::Receiver,
                        ev.id,
                        ev.span,
                        state,
                    );
                }
                for (i, arg) in args.iter().enumerate() {
                    if let Some(arg) = arg {
                        self.pass_through_call(
                            arg,
                            callee.clone(),
                            CallRole::Arg(i),
                            ev.id,
                            ev.span,
                            state,
                        );
                    }
                }
                if let Some(dest) = dest {
                    let node = self.push_node(
                        PfgNodeKind::CallResult { callee: callee.clone(), site: ev.id },
                        dest.type_name.clone(),
                        ev.span,
                        None,
                    );
                    let tok = self.tokens.fresh();
                    state.node_of.insert(tok, node);
                    state.type_of.insert(tok, dest.type_name.clone());
                    state.alias.bind(dest.place.clone(), tok);
                }
            }
            EventKind::FieldRead { receiver, field, dest } => {
                let recv_node = self.node_of_operand(receiver, state);
                let node = self.push_node(
                    PfgNodeKind::FieldRead { field: field.clone() },
                    dest.type_name.clone(),
                    ev.span,
                    recv_node,
                );
                let tok = self.tokens.fresh();
                state.node_of.insert(tok, node);
                state.type_of.insert(tok, dest.type_name.clone());
                state.alias.bind(dest.place.clone(), tok);
            }
            EventKind::FieldWrite { receiver, field, src } => {
                let recv_node = self.node_of_operand(receiver, state);
                let write = self.push_node(
                    PfgNodeKind::FieldWrite { field: field.clone() },
                    src.as_ref().and_then(|s| s.type_name.clone()),
                    ev.span,
                    recv_node,
                );
                if let Some(src) = src {
                    if let Some(tok) = self.token_of(src, state) {
                        if let Some(&cur) = state.node_of.get(&tok) {
                            // Split: part flows into the field, part is retained.
                            let ty = state.type_of.get(&tok).cloned().flatten();
                            let split =
                                self.push_node(PfgNodeKind::Split, ty.clone(), ev.span, None);
                            let retained = self.push_node(PfgNodeKind::Merge, ty, ev.span, None);
                            self.edge(cur, split);
                            self.edge(split, write);
                            self.edge(split, retained);
                            state.node_of.insert(tok, retained);
                        }
                    }
                }
            }
            EventKind::Copy { dest, src } => {
                state.alias.copy(dest.clone(), &src.place);
            }
            EventKind::Sync { target } => {
                if let Some(node) = self.node_of_operand(target, state) {
                    self.sync_targets.push(node);
                }
            }
        }
    }

    /// The per-operand structure of Figure 6: current → SPLIT → {CallPre,
    /// MERGE}; CallPost → MERGE; current := MERGE.
    fn pass_through_call(
        &mut self,
        op: &Operand,
        callee: Callee,
        role: CallRole,
        site: ExprId,
        span: Span,
        state: &mut FlowState,
    ) {
        let Some(tok) = self.token_of(op, state) else { return };
        let Some(&cur) = state.node_of.get(&tok) else { return };
        let ty = state.type_of.get(&tok).cloned().flatten().or(op.type_name.clone());

        let split = self.push_node(PfgNodeKind::Split, ty.clone(), span, None);
        let pre = self.push_node(
            PfgNodeKind::CallPre { callee: callee.clone(), role, site },
            ty.clone(),
            span,
            None,
        );
        let post = self.push_node(
            PfgNodeKind::CallPost { callee: callee.clone(), role, site },
            ty.clone(),
            span,
            None,
        );
        let merge = self.push_node(PfgNodeKind::Merge, ty, span, None);
        self.edge(cur, split);
        self.edge(split, pre);
        self.edge(split, merge);
        self.edge(post, merge);
        state.node_of.insert(tok, merge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::standard_api;

    const FIG3_SRC: &str = r#"
        class Row {
            Collection<Integer> entries;
            Iterator<Integer> createColIter() { return entries.iterator(); }
            void add(int val) {}
        }
        class App {
            Row copy(Row original) {
                Iterator<Integer> iter = original.createColIter();
                Row result = new Row();
                while (iter.hasNext()) {
                    result.add(iter.next());
                }
                return result;
            }
        }
        class C {
            Object f;
            Object accessFields(C o) {
                o.f = new Object();
                return o.f;
            }
        }
    "#;

    fn build(class: &str, method: &str) -> Pfg {
        let unit = parse(FIG3_SRC).unwrap();
        let index = ProgramIndex::build([&unit]);
        let api = standard_api();
        let t = unit.type_named(class).unwrap();
        let m = t.method_named(method).unwrap();
        Pfg::build(&index, &api, class, m)
    }

    fn count_kind(pfg: &Pfg, pred: impl Fn(&PfgNodeKind) -> bool) -> usize {
        pfg.nodes.iter().filter(|n| pred(&n.kind)).count()
    }

    #[test]
    fn figure6_copy_method_shape() {
        let pfg = build("App", "copy");
        // PRE/POST for `this` and `original`.
        assert_eq!(count_kind(&pfg, |k| matches!(k, PfgNodeKind::ParamPre { .. })), 2);
        assert_eq!(count_kind(&pfg, |k| matches!(k, PfgNodeKind::ParamPost { .. })), 2);
        let original = pfg.params.iter().find(|p| p.name == "original").expect("original param");
        assert_eq!(original.type_name, "Row");
        // PRE original feeds a split (the createColIter call).
        let split = pfg.outgoing(original.pre);
        assert_eq!(split.len(), 1);
        assert!(pfg.is_split(split[0]));
        // The split fans into exactly a CallPre and a Merge.
        let out = pfg.outgoing(split[0]);
        assert_eq!(out.len(), 2);
        let kinds: Vec<_> = out.iter().map(|&n| &pfg.nodes[n].kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, PfgNodeKind::CallPre { role: CallRole::Receiver, .. })));
        assert!(kinds.iter().any(|k| matches!(k, PfgNodeKind::Merge)));
        // Result flows somewhere into ResultPost.
        let (_, result_post) = pfg.result.clone().expect("Row return");
        assert!(!pfg.incoming(result_post).is_empty());
    }

    #[test]
    fn figure6_loop_creates_back_edge_merges() {
        let pfg = build("App", "copy");
        // The iterator's permission at the loop head must merge flows from
        // (a) the createColIter result and (b) the loop body (post of
        // next()). Find a merge node with >= 2 incoming edges.
        let loop_merge = pfg
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PfgNodeKind::Merge))
            .filter(|n| n.type_name.as_deref() == Some("Iterator"))
            .find(|n| pfg.incoming(n.id).len() >= 2);
        assert!(loop_merge.is_some(), "loop-head merge with back edge expected");
    }

    #[test]
    fn call_pre_post_nodes_reference_callee() {
        let pfg = build("App", "copy");
        let next_pre = pfg
            .nodes
            .iter()
            .find(|n| {
                matches!(
                    &n.kind,
                    PfgNodeKind::CallPre { callee: Callee::Api { method, .. }, role: CallRole::Receiver, .. }
                        if method == "next"
                )
            })
            .expect("next() receiver pre node");
        assert_eq!(next_pre.type_name.as_deref(), Some("Iterator"));
        // next()'s CallPost exists and feeds a merge.
        let next_post = pfg
            .nodes
            .iter()
            .find(|n| {
                matches!(
                    &n.kind,
                    PfgNodeKind::CallPost { callee: Callee::Api { method, .. }, .. } if method == "next"
                )
            })
            .unwrap();
        let out = pfg.outgoing(next_post.id);
        assert_eq!(out.len(), 1);
        assert!(matches!(pfg.nodes[out[0]].kind, PfgNodeKind::Merge));
    }

    #[test]
    fn figure7_field_access_nodes() {
        let pfg = build("C", "accessFields");
        // o.f = new Object(): a FieldWrite sink with a receiver link.
        let write = pfg
            .nodes
            .iter()
            .find(|n| matches!(&n.kind, PfgNodeKind::FieldWrite { field } if field == "f"))
            .expect("field write node");
        assert!(write.receiver_link.is_some(), "write keeps receiver reference");
        // Field writes are sinks: no outgoing edges.
        assert!(pfg.outgoing(write.id).is_empty());
        // return o.f: a FieldRead source flowing into the result.
        let read = pfg
            .nodes
            .iter()
            .find(|n| matches!(&n.kind, PfgNodeKind::FieldRead { field } if field == "f"))
            .expect("field read node");
        assert!(read.receiver_link.is_some());
        let (_, result_post) = pfg.result.clone().unwrap();
        // The read (a permission source) reaches the result post node.
        let mut frontier = vec![read.id];
        let mut reached = false;
        let mut seen = vec![false; pfg.nodes.len()];
        while let Some(n) = frontier.pop() {
            if n == result_post {
                reached = true;
                break;
            }
            if std::mem::replace(&mut seen[n], true) {
                continue;
            }
            frontier.extend(pfg.outgoing(n).iter().copied());
        }
        assert!(reached, "field read should flow to result");
    }

    #[test]
    fn new_node_for_construction() {
        let pfg = build("App", "copy");
        assert_eq!(count_kind(&pfg, |k| matches!(k, PfgNodeKind::New { .. })), 1);
    }

    #[test]
    fn splits_only_at_calls_and_field_writes() {
        let pfg = build("App", "copy");
        for n in &pfg.nodes {
            if pfg.outgoing(n.id).len() > 1 {
                // Multi-out nodes are either explicit splits or branch fan-out
                // on merges (control flow).
                assert!(
                    pfg.is_split(n.id) || matches!(n.kind, PfgNodeKind::Merge),
                    "unexpected multi-out node {:?}",
                    n.kind
                );
            }
        }
    }

    #[test]
    fn params_include_receiver() {
        let pfg = build("App", "copy");
        assert_eq!(pfg.params[0].name, "this");
        assert_eq!(pfg.params[0].type_name, "App");
    }

    #[test]
    fn dot_output_mentions_key_nodes() {
        let pfg = build("App", "copy");
        let dot = pfg.to_dot();
        assert!(dot.contains("PRE original"));
        assert!(dot.contains("POST original"));
        assert!(dot.contains("SPLIT"));
        assert!(dot.contains("MERGE"));
        assert!(dot.contains("style=dotted") || !dot.contains("READ"), "dotted receiver links");
        assert!(dot.starts_with("digraph pfg {"));
    }

    #[test]
    fn branch_insensitive_but_flow_correct_for_if() {
        let src = r#"
            class App {
                void m(Iterator<Integer> it, boolean c) {
                    if (c) { it.next(); } else { it.hasNext(); }
                    it.hasNext();
                }
            }
        "#;
        let unit = parse(src).unwrap();
        let index = ProgramIndex::build([&unit]);
        let api = standard_api();
        let m = unit.type_named("App").unwrap().method_named("m").unwrap();
        let pfg = Pfg::build(&index, &api, "App", m);
        // After the diamond, `it` merges; the final hasNext call has one pre
        // node whose permission comes from a join merge with 2 incoming.
        let join_merges: Vec<_> = pfg
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, PfgNodeKind::Merge))
            .filter(|n| pfg.incoming(n.id).len() >= 2)
            .collect();
        assert!(!join_merges.is_empty(), "if/else join merge expected");
    }
}
