//! Flattening expressions into ordered permission events.
//!
//! Permission flow is attached to the *events* a method body performs on
//! object references: constructions, method calls, field reads and field
//! writes (paper §3.1). This module linearizes an expression tree into the
//! sequence of such events in Java evaluation order (receiver, then
//! arguments, then the call itself), which both the PFG builder and the
//! PLURAL checker consume.

use crate::types::{Callee, TypeEnv};
use java_syntax::ast::*;
use java_syntax::Span;
use std::fmt;

/// An abstract storage location holding an object reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Place {
    /// The method receiver.
    This,
    /// A local variable or parameter.
    Local(String),
    /// The anonymous result of an expression (identified by its [`ExprId`]).
    Temp(ExprId),
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Place::This => f.write_str("this"),
            Place::Local(n) => f.write_str(n),
            Place::Temp(id) => write!(f, "tmp({id})"),
        }
    }
}

/// A reference-valued operand: where it lives and its inferred type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operand {
    /// Location of the reference.
    pub place: Place,
    /// Simple type name, if resolved.
    pub type_name: Option<String>,
}

/// One permission-relevant event, in evaluation order.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The expression that produced this event.
    pub id: ExprId,
    /// Source location for diagnostics.
    pub span: Span,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of permission events.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// `new T(...)` — a fresh object with `unique` permission.
    New {
        /// Constructed type (simple name).
        type_name: Option<String>,
        /// Where the fresh reference lands.
        dest: Place,
        /// Resolved constructor, when the class is in the program.
        callee: Callee,
        /// Reference-valued arguments.
        args: Vec<Option<Operand>>,
    },
    /// A method call.
    Call {
        /// Resolved callee.
        callee: Callee,
        /// Receiver operand (`None` for unqualified/static calls — an
        /// unqualified instance call has receiver [`Place::This`]).
        receiver: Option<Operand>,
        /// Reference-valued arguments (`None` entries are primitives).
        args: Vec<Option<Operand>>,
        /// Where a reference-valued result lands.
        dest: Option<Operand>,
    },
    /// Reading a field out of an object (a permission source).
    FieldRead {
        /// Receiver operand.
        receiver: Operand,
        /// Field name.
        field: String,
        /// Where the read reference lands.
        dest: Operand,
    },
    /// Writing a field (a permission sink; requires write permission on the
    /// receiver — constraint L3).
    FieldWrite {
        /// Receiver operand.
        receiver: Operand,
        /// Field name.
        field: String,
        /// The written reference, when reference-typed.
        src: Option<Operand>,
    },
    /// A reference copy `x = y` — the must-alias analysis tracks these.
    Copy {
        /// Target local.
        dest: Place,
        /// Source operand.
        src: Operand,
    },
    /// Entering a `synchronized (target) { ... }` block. Consumed by
    /// heuristic H5 (thread-shared targets are `full`/`share`/`pure`).
    Sync {
        /// The lock target.
        target: Operand,
    },
}

/// Linearizes `expr`, appending events to `sink`, and returns the operand
/// holding the expression's reference value (if reference-typed).
///
/// `env` must already have all locals in scope bound; it is not modified.
pub fn flatten_expr(expr: &Expr, env: &TypeEnv<'_>, sink: &mut Vec<Event>) -> Option<Operand> {
    match &expr.kind {
        ExprKind::Literal(_) => None,
        ExprKind::This => Some(Operand { place: Place::This, type_name: Some(env.class.clone()) }),
        ExprKind::Name(n) => {
            if env.is_local(n) {
                Some(Operand { place: Place::Local(n.clone()), type_name: env.local_type(n) })
            } else {
                // Implicit `this.field` read: produces a fresh permission.
                let recv = Operand { place: Place::This, type_name: Some(env.class.clone()) };
                field_read(expr, env, recv, n, sink)
            }
        }
        ExprKind::FieldAccess { receiver, name } => {
            let recv = flatten_expr(receiver, env, sink)?;
            field_read(expr, env, recv, name, sink)
        }
        ExprKind::Call { receiver, name, args } => {
            let recv_op = match receiver {
                Some(r) => flatten_expr(r, env, sink),
                None => {
                    // Unqualified call: implicit `this` receiver unless the
                    // target is static.
                    let callee = env.resolve(None, name);
                    match &callee {
                        Callee::Program(_id) => {
                            Some(Operand { place: Place::This, type_name: Some(env.class.clone()) })
                        }
                        _ => None,
                    }
                }
            };
            let arg_ops: Vec<Option<Operand>> =
                args.iter().map(|a| flatten_expr(a, env, sink)).collect();
            let callee = env.resolve(receiver.as_deref(), name);
            // Static targets carry no receiver permission.
            let recv_op = match &callee {
                Callee::Program(id) => {
                    let is_static = env_is_static(env, id);
                    if is_static {
                        None
                    } else {
                        recv_op
                    }
                }
                _ => recv_op,
            };
            let ret_ty = env.infer(expr);
            let dest = ret_ty.map(|t| Operand { place: Place::Temp(expr.id), type_name: Some(t) });
            sink.push(Event {
                id: expr.id,
                span: expr.span,
                kind: EventKind::Call {
                    callee,
                    receiver: recv_op,
                    args: arg_ops,
                    dest: dest.clone(),
                },
            });
            dest
        }
        ExprKind::New { ty, args } => {
            let arg_ops: Vec<Option<Operand>> =
                args.iter().map(|a| flatten_expr(a, env, sink)).collect();
            let type_name = crate::types::ref_type_name(ty);
            let callee = match &type_name {
                Some(t) => env.resolve_constructor(t),
                None => Callee::Unknown { method: "<init>".into() },
            };
            let dest = Place::Temp(expr.id);
            sink.push(Event {
                id: expr.id,
                span: expr.span,
                kind: EventKind::New {
                    type_name: type_name.clone(),
                    dest: dest.clone(),
                    callee,
                    args: arg_ops,
                },
            });
            Some(Operand { place: dest, type_name })
        }
        ExprKind::Assign { lhs, op, rhs } => {
            // Compound assignments (`+=`) on references do not occur in the
            // subset; treat all assignments uniformly.
            let _ = op;
            match &lhs.kind {
                ExprKind::Name(n) if env.is_local(n) => {
                    let src = flatten_expr(rhs, env, sink);
                    if let Some(src) = &src {
                        sink.push(Event {
                            id: expr.id,
                            span: expr.span,
                            kind: EventKind::Copy {
                                dest: Place::Local(n.clone()),
                                src: src.clone(),
                            },
                        });
                    }
                    src.map(|s| Operand { place: Place::Local(n.clone()), ..s })
                }
                ExprKind::Name(n) => {
                    // Implicit `this.n = rhs`.
                    let recv = Operand { place: Place::This, type_name: Some(env.class.clone()) };
                    let src = flatten_expr(rhs, env, sink);
                    sink.push(Event {
                        id: expr.id,
                        span: expr.span,
                        kind: EventKind::FieldWrite {
                            receiver: recv,
                            field: n.clone(),
                            src: src.clone(),
                        },
                    });
                    src
                }
                ExprKind::FieldAccess { receiver, name } => {
                    let recv = flatten_expr(receiver, env, sink);
                    let src = flatten_expr(rhs, env, sink);
                    if let Some(recv) = recv {
                        sink.push(Event {
                            id: expr.id,
                            span: expr.span,
                            kind: EventKind::FieldWrite {
                                receiver: recv,
                                field: name.clone(),
                                src: src.clone(),
                            },
                        });
                    }
                    src
                }
                _ => {
                    // Array writes etc.: evaluate for effects.
                    flatten_expr(lhs, env, sink);
                    flatten_expr(rhs, env, sink)
                }
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            flatten_expr(lhs, env, sink);
            flatten_expr(rhs, env, sink);
            None
        }
        ExprKind::Unary { expr: inner, .. } | ExprKind::Postfix { expr: inner, .. } => {
            flatten_expr(inner, env, sink);
            None
        }
        ExprKind::Cast { ty, expr: inner } => {
            let op = flatten_expr(inner, env, sink)?;
            // A cast refines the static type but keeps the same place.
            Some(Operand { type_name: crate::types::ref_type_name(ty).or(op.type_name), ..op })
        }
        ExprKind::InstanceOf { expr: inner, .. } => {
            flatten_expr(inner, env, sink);
            None
        }
        ExprKind::Conditional { cond, then_expr, else_expr } => {
            // ANEK is branch-insensitive inside expressions (paper §4.2
            // attributes one false positive to exactly this); both arms'
            // events are emitted in order and the *then* arm's value is
            // used.
            flatten_expr(cond, env, sink);
            let t = flatten_expr(then_expr, env, sink);
            let e = flatten_expr(else_expr, env, sink);
            t.or(e)
        }
        ExprKind::ArrayAccess { array, index } => {
            flatten_expr(array, env, sink);
            flatten_expr(index, env, sink);
            None
        }
    }
}

fn field_read(
    expr: &Expr,
    env: &TypeEnv<'_>,
    recv: Operand,
    field: &str,
    sink: &mut Vec<Event>,
) -> Option<Operand> {
    let field_ty = recv.type_name.as_deref().and_then(|t| env.index().field_type(t, field));
    field_ty.as_ref()?;
    let dest = Operand { place: Place::Temp(expr.id), type_name: field_ty };
    sink.push(Event {
        id: expr.id,
        span: expr.span,
        kind: EventKind::FieldRead { receiver: recv, field: field.to_string(), dest: dest.clone() },
    });
    Some(dest)
}

fn env_is_static(env: &TypeEnv<'_>, id: &crate::types::MethodId) -> bool {
    env.index().method(id).is_some_and(|m| m.is_static)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MethodId, ProgramIndex};
    use java_syntax::parse;
    use spec_lang::standard_api;

    fn events_in(method_src: &str) -> Vec<Event> {
        let src = format!(
            r#"class Row {{
                Collection<Integer> entries;
                Iterator<Integer> createColIter() {{ return entries.iterator(); }}
                void add(int val) {{}}
                static Row parseCSVRow(String s) {{ return new Row(); }}
            }}
            class App {{
                Row helper(Row r) {{ return r; }}
                {method_src}
            }}"#
        );
        let unit = parse(&src).unwrap();
        let index = ProgramIndex::build([&unit]);
        let api = standard_api();
        let app = unit.type_named("App").unwrap();
        let m = app.methods().last().unwrap();
        let mut env = TypeEnv::for_method(&index, &api, "App", m);
        let mut sink = Vec::new();
        for s in &m.body.as_ref().unwrap().stmts {
            match &s.kind {
                StmtKind::Expr(e) | StmtKind::Return(Some(e)) => {
                    flatten_expr(e, &env, &mut sink);
                }
                StmtKind::LocalVar { ty, name, init } => {
                    env.bind_local(name, ty);
                    if let Some(e) = init {
                        flatten_expr(e, &env, &mut sink);
                    }
                }
                _ => {}
            }
        }
        sink
    }

    #[test]
    fn chained_call_events_in_eval_order() {
        let evs = events_in("void m(Row r) { r.createColIter().next(); }");
        assert_eq!(evs.len(), 2);
        match &evs[0].kind {
            EventKind::Call {
                callee: Callee::Program(id),
                receiver: Some(r),
                dest: Some(d),
                ..
            } => {
                assert_eq!(*id, MethodId::new("Row", "createColIter"));
                assert_eq!(r.place, Place::Local("r".into()));
                assert_eq!(d.type_name.as_deref(), Some("Iterator"));
            }
            other => panic!("first event wrong: {other:?}"),
        }
        match &evs[1].kind {
            EventKind::Call {
                callee: Callee::Api { type_name, method },
                receiver: Some(r),
                ..
            } => {
                assert_eq!(type_name, "Iterator");
                assert_eq!(method, "next");
                assert!(matches!(r.place, Place::Temp(_)));
            }
            other => panic!("second event wrong: {other:?}"),
        }
    }

    #[test]
    fn new_produces_fresh_temp() {
        let evs = events_in("void m() { Row r = new Row(); }");
        assert_eq!(evs.len(), 1);
        match &evs[0].kind {
            EventKind::New { type_name, dest, .. } => {
                assert_eq!(type_name.as_deref(), Some("Row"));
                assert!(matches!(dest, Place::Temp(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn local_assignment_emits_copy() {
        let evs = events_in("void m(Row a) { Row b = null; b = a; }");
        assert_eq!(evs.len(), 1);
        match &evs[0].kind {
            EventKind::Copy { dest, src } => {
                assert_eq!(*dest, Place::Local("b".into()));
                assert_eq!(src.place, Place::Local("a".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn field_write_is_a_sink_event() {
        let evs = events_in("void m(Row r, Collection<Integer> c) { r.entries = c; }");
        assert_eq!(evs.len(), 1);
        match &evs[0].kind {
            EventKind::FieldWrite { receiver, field, src: Some(src) } => {
                assert_eq!(receiver.place, Place::Local("r".into()));
                assert_eq!(field, "entries");
                assert_eq!(src.place, Place::Local("c".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn field_read_produces_source_event() {
        let evs = events_in("void m(Row r) { r.entries.add(null); }");
        // read entries, then call add.
        assert!(matches!(&evs[0].kind, EventKind::FieldRead { field, .. } if field == "entries"));
        assert!(matches!(
            &evs[1].kind,
            EventKind::Call { callee: Callee::Api { type_name, .. }, .. } if type_name == "Collection"
        ));
    }

    #[test]
    fn static_call_has_no_receiver() {
        let evs = events_in(r#"void m() { Row r = parseCSVRow("1,2"); }"#);
        match &evs[0].kind {
            EventKind::Call { callee: Callee::Program(id), receiver, dest: Some(_), .. } => {
                assert_eq!(*id, MethodId::new("Row", "parseCSVRow"));
                assert!(receiver.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unqualified_instance_call_gets_this_receiver() {
        let evs = events_in("void m(Row r) { helper(r); }");
        match &evs[0].kind {
            EventKind::Call { callee: Callee::Program(id), receiver: Some(recv), args, .. } => {
                assert_eq!(*id, MethodId::new("App", "helper"));
                assert_eq!(recv.place, Place::This);
                assert_eq!(args.len(), 1);
                assert_eq!(args[0].as_ref().unwrap().place, Place::Local("r".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn primitive_args_are_none() {
        let evs = events_in("void m(Row r) { r.add(42); }");
        match &evs[0].kind {
            EventKind::Call { args, dest, .. } => {
                assert_eq!(args, &vec![None]);
                assert!(dest.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conditional_expression_flattens_both_arms() {
        let evs = events_in("void m(Row a, Row b, boolean c) { Row x = c ? a.createColIter() != null ? a : b : b; }");
        // one call event from the nested conditional
        assert!(evs.iter().any(|e| matches!(&e.kind, EventKind::Call { .. })));
    }
}
