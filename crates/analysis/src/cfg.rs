//! Control-flow graphs over permission events.
//!
//! The paper constructs a CFG per method "in order to determine the flow of
//! the permission" (§3.1). Here each basic block carries the linearized
//! [`Event`]s it performs; terminators capture branches (with optional
//! dynamic state tests, e.g. `while (iter.hasNext())`), returns and loops
//! (as back edges). The PLURAL checker runs a worklist dataflow over this
//! graph; Table 3's "branchy program" statistics also come from here.

use crate::events::{flatten_expr, Event, EventKind, Operand};
use crate::types::{Callee, TypeEnv};
use java_syntax::ast::*;
use java_syntax::Span;

/// Index of a basic block within its [`Cfg`].
pub type BlockId = usize;

/// A dynamic state test guarding a branch, e.g. `if (it.hasNext())`.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchTest {
    /// The tested reference.
    pub operand: Operand,
    /// The state-test method that was called.
    pub callee: Callee,
    /// Whether the condition was negated (`!it.hasNext()`).
    pub negated: bool,
}

/// How a block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch; `test` is present when the condition was a
    /// recognizable state-test call.
    Branch {
        /// Recognized state test, if any.
        test: Option<BranchTest>,
        /// Successor when the condition is true.
        then_blk: BlockId,
        /// Successor when the condition is false.
        else_blk: BlockId,
    },
    /// `return [operand];` — jumps to the exit block.
    Return(Option<Operand>),
    /// The distinguished exit block's terminator.
    Exit,
}

/// A basic block: straight-line events plus a terminator.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Permission events in execution order.
    pub events: Vec<Event>,
    /// How the block ends. Defaults to `Exit` until sealed.
    pub term: Option<Terminator>,
    /// Span of the statement(s) this block came from (diagnostics).
    pub span: Span,
}

/// A per-method control-flow graph of permission events.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// The blocks; `entry` and `exit` index into this.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Exit block (all `return`s lead here).
    pub exit: BlockId,
}

impl Cfg {
    /// Builds the CFG for a method body. Locals declared in the body are
    /// bound into `env` as a side effect (the subset corpus does not rely on
    /// shadowing).
    pub fn build(method: &MethodDecl, env: &mut TypeEnv<'_>) -> Cfg {
        let mut b = Builder {
            blocks: vec![Block::default(), Block::default()],
            breaks: Vec::new(),
            continues: Vec::new(),
        };
        b.blocks[1].term = Some(Terminator::Exit);
        let mut cur = 0;
        if let Some(body) = &method.body {
            for s in &body.stmts {
                cur = b.stmt(cur, s, env);
            }
        }
        b.seal(cur, Terminator::Return(None));
        Cfg { blocks: b.blocks, entry: 0, exit: 1 }
    }

    /// Successor blocks of a block.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        match self.blocks[id].term.as_ref().expect("sealed cfg") {
            Terminator::Goto(t) => vec![*t],
            Terminator::Branch { then_blk, else_blk, .. } => vec![*then_blk, *else_blk],
            Terminator::Return(_) => vec![self.exit],
            Terminator::Exit => vec![],
        }
    }

    /// Blocks reachable from entry, in reverse-postorder-ish DFS order.
    pub fn reachable(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            order.push(b);
            for s in self.successors(b) {
                stack.push(s);
            }
        }
        order
    }

    /// Number of two-way branches (Table 3 reports a program with "numerous
    /// control flow branches").
    pub fn branch_count(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b.term, Some(Terminator::Branch { .. }))).count()
    }

    /// All events of all reachable blocks, in block DFS order.
    pub fn all_events(&self) -> impl Iterator<Item = &Event> {
        self.reachable()
            .into_iter()
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(move |b| self.blocks[b].events.iter())
            .collect::<Vec<_>>()
            .into_iter()
    }
}

struct Builder {
    blocks: Vec<Block>,
    breaks: Vec<BlockId>,
    continues: Vec<BlockId>,
}

impl Builder {
    fn new_block(&mut self, span: Span) -> BlockId {
        self.blocks.push(Block { span, ..Block::default() });
        self.blocks.len() - 1
    }

    fn seal(&mut self, id: BlockId, term: Terminator) {
        if self.blocks[id].term.is_none() {
            self.blocks[id].term = Some(term);
        }
    }

    fn is_sealed(&self, id: BlockId) -> bool {
        self.blocks[id].term.is_some()
    }

    /// Processes one statement starting in `cur`; returns the block where
    /// control continues (possibly a fresh one).
    fn stmt(&mut self, cur: BlockId, s: &Stmt, env: &mut TypeEnv<'_>) -> BlockId {
        if self.is_sealed(cur) {
            // Unreachable code after return/break: park events in a dead block.
            let dead = self.new_block(s.span);
            return self.stmt_inner(dead, s, env);
        }
        self.stmt_inner(cur, s, env)
    }

    fn stmt_inner(&mut self, cur: BlockId, s: &Stmt, env: &mut TypeEnv<'_>) -> BlockId {
        match &s.kind {
            StmtKind::Block(b) => {
                let mut c = cur;
                for s in &b.stmts {
                    c = self.stmt(c, s, env);
                }
                c
            }
            StmtKind::LocalVar { ty, name, init } => {
                env.bind_local(name, ty);
                if let Some(e) = init {
                    let mut events = Vec::new();
                    let src = flatten_expr(e, env, &mut events);
                    self.blocks[cur].events.extend(events);
                    if let Some(src) = src {
                        self.blocks[cur].events.push(Event {
                            id: e.id,
                            span: s.span,
                            kind: EventKind::Copy {
                                dest: crate::events::Place::Local(name.clone()),
                                src,
                            },
                        });
                    }
                }
                cur
            }
            StmtKind::Expr(e) => {
                let mut events = Vec::new();
                flatten_expr(e, env, &mut events);
                self.blocks[cur].events.extend(events);
                cur
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                let test = self.eval_cond(cur, cond, env);
                let then_blk = self.new_block(then_branch.span);
                let else_blk = self.new_block(s.span);
                self.seal(cur, Terminator::Branch { test, then_blk, else_blk });
                let then_end = self.stmt(then_blk, then_branch, env);
                let join = self.new_block(s.span);
                self.seal(then_end, Terminator::Goto(join));
                match else_branch {
                    Some(eb) => {
                        let else_end = self.stmt(else_blk, eb, env);
                        self.seal(else_end, Terminator::Goto(join));
                    }
                    None => self.seal(else_blk, Terminator::Goto(join)),
                }
                join
            }
            StmtKind::While { cond, body } => {
                let head = self.new_block(s.span);
                self.seal(cur, Terminator::Goto(head));
                let test = self.eval_cond(head, cond, env);
                let body_blk = self.new_block(body.span);
                let exit_blk = self.new_block(s.span);
                self.seal(
                    head,
                    Terminator::Branch { test, then_blk: body_blk, else_blk: exit_blk },
                );
                self.breaks.push(exit_blk);
                self.continues.push(head);
                let body_end = self.stmt(body_blk, body, env);
                self.breaks.pop();
                self.continues.pop();
                self.seal(body_end, Terminator::Goto(head));
                exit_blk
            }
            StmtKind::DoWhile { body, cond } => {
                // body -> cond -> (back to body | exit); runs at least once.
                let body_blk = self.new_block(body.span);
                self.seal(cur, Terminator::Goto(body_blk));
                let exit_blk = self.new_block(s.span);
                let cond_blk = self.new_block(s.span);
                self.breaks.push(exit_blk);
                self.continues.push(cond_blk);
                let body_end = self.stmt(body_blk, body, env);
                self.breaks.pop();
                self.continues.pop();
                self.seal(body_end, Terminator::Goto(cond_blk));
                let test = self.eval_cond(cond_blk, cond, env);
                self.seal(
                    cond_blk,
                    Terminator::Branch { test, then_blk: body_blk, else_blk: exit_blk },
                );
                exit_blk
            }
            StmtKind::Switch { scrutinee, cases } => {
                // Evaluate the scrutinee, then dispatch to each case group;
                // case bodies fall through to the next group unless they
                // break to the join.
                let mut events = Vec::new();
                flatten_expr(scrutinee, env, &mut events);
                self.blocks[cur].events.extend(events);
                let join = self.new_block(s.span);
                // Pre-create one entry block per case for fallthrough wiring.
                let entries: Vec<BlockId> = cases.iter().map(|_| self.new_block(s.span)).collect();
                // Dispatch chain: an opaque branch per case (semantics of
                // label matching are not tracked).
                let mut dispatch = cur;
                let has_default = cases.iter().any(|c| c.labels.contains(&None));
                for (i, _case) in cases.iter().enumerate() {
                    let next = if i + 1 == cases.len() {
                        if has_default {
                            entries[i]
                        } else {
                            join
                        }
                    } else {
                        self.new_block(s.span)
                    };
                    if i + 1 == cases.len() && has_default {
                        self.seal(dispatch, Terminator::Goto(entries[i]));
                        break;
                    }
                    self.seal(
                        dispatch,
                        Terminator::Branch { test: None, then_blk: entries[i], else_blk: next },
                    );
                    dispatch = next;
                }
                if cases.is_empty() {
                    self.seal(cur, Terminator::Goto(join));
                }
                // Case bodies with fallthrough.
                self.breaks.push(join);
                for (i, case) in cases.iter().enumerate() {
                    let mut c = entries[i];
                    for cs in &case.body {
                        c = self.stmt(c, cs, env);
                    }
                    let fall = if i + 1 < cases.len() { entries[i + 1] } else { join };
                    self.seal(c, Terminator::Goto(fall));
                }
                self.breaks.pop();
                join
            }
            StmtKind::For { init, cond, update, body } => {
                let mut c = cur;
                for i in init {
                    c = self.stmt(c, i, env);
                }
                let head = self.new_block(s.span);
                self.seal(c, Terminator::Goto(head));
                let test = match cond {
                    Some(e) => self.eval_cond(head, e, env),
                    None => None,
                };
                let body_blk = self.new_block(body.span);
                let exit_blk = self.new_block(s.span);
                self.seal(
                    head,
                    Terminator::Branch { test, then_blk: body_blk, else_blk: exit_blk },
                );
                // `continue` in a for loop jumps to the update step; model the
                // update as a dedicated block.
                let update_blk = self.new_block(s.span);
                self.breaks.push(exit_blk);
                self.continues.push(update_blk);
                let body_end = self.stmt(body_blk, body, env);
                self.breaks.pop();
                self.continues.pop();
                self.seal(body_end, Terminator::Goto(update_blk));
                let mut events = Vec::new();
                for u in update {
                    flatten_expr(u, env, &mut events);
                }
                self.blocks[update_blk].events.extend(events);
                self.seal(update_blk, Terminator::Goto(head));
                exit_blk
            }
            StmtKind::ForEach { ty, name, iterable, body } => {
                let mut events = Vec::new();
                flatten_expr(iterable, env, &mut events);
                self.blocks[cur].events.extend(events);
                env.bind_local(name, ty);
                let head = self.new_block(s.span);
                self.seal(cur, Terminator::Goto(head));
                let body_blk = self.new_block(body.span);
                let exit_blk = self.new_block(s.span);
                self.seal(
                    head,
                    Terminator::Branch { test: None, then_blk: body_blk, else_blk: exit_blk },
                );
                self.breaks.push(exit_blk);
                self.continues.push(head);
                let body_end = self.stmt(body_blk, body, env);
                self.breaks.pop();
                self.continues.pop();
                self.seal(body_end, Terminator::Goto(head));
                exit_blk
            }
            StmtKind::Return(value) => {
                let op = match value {
                    Some(e) => {
                        let mut events = Vec::new();
                        let op = flatten_expr(e, env, &mut events);
                        self.blocks[cur].events.extend(events);
                        op
                    }
                    None => None,
                };
                self.seal(cur, Terminator::Return(op));
                cur
            }
            StmtKind::Assert { cond, message } => {
                let mut events = Vec::new();
                flatten_expr(cond, env, &mut events);
                if let Some(m) = message {
                    flatten_expr(m, env, &mut events);
                }
                self.blocks[cur].events.extend(events);
                cur
            }
            StmtKind::Synchronized { target, body } => {
                let mut events = Vec::new();
                let op = flatten_expr(target, env, &mut events);
                self.blocks[cur].events.extend(events);
                if let Some(op) = op {
                    self.blocks[cur].events.push(Event {
                        id: target.id,
                        span: s.span,
                        kind: EventKind::Sync { target: op },
                    });
                }
                let mut c = cur;
                for s in &body.stmts {
                    c = self.stmt(c, s, env);
                }
                c
            }
            StmtKind::Try { body, catches, finally } => {
                // Conservative exceptional flow: the guarded block may be
                // abandoned at any point, so each catch handler starts from
                // the state at try-entry; all paths re-join at the finally
                // block (or directly after the statement when absent).
                let body_blk = self.new_block(body.span);
                let join = self.new_block(s.span);
                if catches.is_empty() {
                    self.seal(cur, Terminator::Goto(body_blk));
                } else {
                    // Dispatch: normal path to the body, exceptional paths to
                    // the catches (modelled as an opaque branch chain).
                    let mut dispatch = cur;
                    for (i, c) in catches.iter().enumerate() {
                        let catch_blk = self.new_block(c.body.span);
                        let next =
                            if i + 1 == catches.len() { body_blk } else { self.new_block(s.span) };
                        self.seal(
                            dispatch,
                            Terminator::Branch { test: None, then_blk: catch_blk, else_blk: next },
                        );
                        let mut env_catch = env.clone();
                        env_catch.bind_local(&c.name, &c.ty);
                        let mut cend = catch_blk;
                        for cs in &c.body.stmts {
                            cend = self.stmt(cend, cs, &mut env_catch);
                        }
                        self.seal(cend, Terminator::Goto(join));
                        dispatch = next;
                    }
                }
                let mut bend = body_blk;
                for bs in &body.stmts {
                    bend = self.stmt(bend, bs, env);
                }
                self.seal(bend, Terminator::Goto(join));
                match finally {
                    Some(f) => {
                        let mut fend = join;
                        for fs in &f.stmts {
                            fend = self.stmt(fend, fs, env);
                        }
                        fend
                    }
                    None => join,
                }
            }
            StmtKind::Throw(e) => {
                let mut events = Vec::new();
                flatten_expr(e, env, &mut events);
                self.blocks[cur].events.extend(events);
                // Exceptional exit: model as return-without-value.
                self.seal(cur, Terminator::Return(None));
                cur
            }
            StmtKind::Break => {
                if let Some(&target) = self.breaks.last() {
                    self.seal(cur, Terminator::Goto(target));
                }
                cur
            }
            StmtKind::Continue => {
                if let Some(&target) = self.continues.last() {
                    self.seal(cur, Terminator::Goto(target));
                }
                cur
            }
            StmtKind::Empty => cur,
        }
    }

    /// Flattens a branch condition into `cur` and recognizes state-test
    /// shapes: `x.hasNext()`, `!x.hasNext()`.
    fn eval_cond(
        &mut self,
        cur: BlockId,
        cond: &Expr,
        env: &mut TypeEnv<'_>,
    ) -> Option<BranchTest> {
        let (inner, negated) = match &cond.kind {
            ExprKind::Unary { op: UnaryOp::Not, expr } => (expr.as_ref(), true),
            _ => (cond, false),
        };
        let mut events = Vec::new();
        flatten_expr(inner, env, &mut events);
        if negated && !std::ptr::eq(inner, cond) {
            // events already cover the inner expression; nothing extra for `!`.
        }
        let test = match (&inner.kind, events.last()) {
            (
                ExprKind::Call { .. },
                Some(Event { kind: EventKind::Call { callee, receiver: Some(recv), .. }, .. }),
            ) => Some(BranchTest { operand: recv.clone(), callee: callee.clone(), negated }),
            _ => None,
        };
        self.blocks[cur].events.extend(events);
        test
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProgramIndex;
    use java_syntax::parse;
    use spec_lang::standard_api;

    fn cfg_of(method_src: &str) -> Cfg {
        let src = format!(
            r#"class Row {{
                Collection<Integer> entries;
                Iterator<Integer> createColIter() {{ return entries.iterator(); }}
                void add(int val) {{}}
            }}
            class App {{ {method_src} }}"#
        );
        let unit = parse(&src).unwrap();
        let index = ProgramIndex::build([&unit]);
        let api = standard_api();
        // Leak to get 'static lifetimes for the test helper.
        let index: &'static ProgramIndex = Box::leak(Box::new(index));
        let api: &'static spec_lang::ApiRegistry = Box::leak(Box::new(api));
        let unit: &'static CompilationUnit = Box::leak(Box::new(unit));
        let app = unit.type_named("App").unwrap();
        let m = app.methods().last().unwrap();
        let mut env = TypeEnv::for_method(index, api, "App", m);
        Cfg::build(m, &mut env)
    }

    #[test]
    fn straight_line_is_two_blocks() {
        let cfg = cfg_of("void m(Row r) { r.add(1); r.add(2); }");
        let reach = cfg.reachable();
        assert!(reach.contains(&cfg.entry));
        assert!(reach.contains(&cfg.exit));
        assert_eq!(cfg.branch_count(), 0);
        assert_eq!(cfg.blocks[cfg.entry].events.len(), 2);
    }

    #[test]
    fn if_else_creates_diamond() {
        let cfg = cfg_of(
            "void m(Row r, boolean c) { if (c) { r.add(1); } else { r.add(2); } r.add(3); }",
        );
        assert_eq!(cfg.branch_count(), 1);
        // entry branches to two blocks that converge on a join.
        let succs = cfg.successors(cfg.entry);
        assert_eq!(succs.len(), 2);
        let j1: Vec<_> = cfg.successors(succs[0]);
        let j2: Vec<_> = cfg.successors(succs[1]);
        assert_eq!(j1, j2, "both branches reach the same join");
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = cfg_of(
            r#"void m(Row original) {
                Iterator<Integer> iter = original.createColIter();
                while (iter.hasNext()) { iter.next(); }
            }"#,
        );
        assert_eq!(cfg.branch_count(), 1);
        // Find the branch block; its body successor must eventually loop back.
        let (head, body) = cfg
            .blocks
            .iter()
            .enumerate()
            .find_map(|(i, b)| match &b.term {
                Some(Terminator::Branch { then_blk, .. }) => Some((i, *then_blk)),
                _ => None,
            })
            .unwrap();
        // Walk forward from the body; we must come back to head.
        let mut cur = body;
        let mut steps = 0;
        loop {
            let succ = cfg.successors(cur);
            assert!(!succ.is_empty(), "body fell off");
            cur = succ[0];
            if cur == head {
                break;
            }
            steps += 1;
            assert!(steps < 10, "no back edge found");
        }
    }

    #[test]
    fn recognizes_state_test_in_condition() {
        let cfg = cfg_of(
            r#"void m(Row original) {
                Iterator<Integer> iter = original.createColIter();
                if (iter.hasNext()) { iter.next(); }
            }"#,
        );
        let test = cfg
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                Some(Terminator::Branch { test: Some(t), .. }) => Some(t.clone()),
                _ => None,
            })
            .expect("state test recognized");
        assert!(!test.negated);
        assert!(matches!(&test.callee, Callee::Api { method, .. } if method == "hasNext"));
    }

    #[test]
    fn negated_state_test() {
        let cfg = cfg_of(
            r#"void m(Iterator<Integer> iter) {
                if (!iter.hasNext()) { return; }
                iter.next();
            }"#,
        );
        let test = cfg
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                Some(Terminator::Branch { test: Some(t), .. }) => Some(t.clone()),
                _ => None,
            })
            .unwrap();
        assert!(test.negated);
    }

    #[test]
    fn break_exits_loop() {
        let cfg = cfg_of(
            r#"void m(Row r, boolean c) {
                while (c) { if (c) { break; } r.add(1); }
                r.add(2);
            }"#,
        );
        // All blocks reachable; specifically the post-loop block.
        let total_events: usize = cfg.reachable().iter().map(|&b| cfg.blocks[b].events.len()).sum();
        assert_eq!(total_events, 2, "both add() calls reachable");
        assert_eq!(cfg.branch_count(), 2);
    }

    #[test]
    fn return_flows_to_exit() {
        let cfg = cfg_of("Row m(Row r) { return r; }");
        match &cfg.blocks[cfg.entry].term {
            Some(Terminator::Return(Some(op))) => {
                assert_eq!(op.place, crate::events::Place::Local("r".into()));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cfg.successors(cfg.entry), vec![cfg.exit]);
    }

    #[test]
    fn synchronized_emits_sync_event() {
        let cfg = cfg_of("void m(Row r) { synchronized (r) { r.add(1); } }");
        let has_sync =
            cfg.blocks[cfg.entry].events.iter().any(|e| matches!(&e.kind, EventKind::Sync { .. }));
        assert!(has_sync);
    }

    #[test]
    fn foreach_desugars_to_loop() {
        let cfg = cfg_of("void m(Collection<Integer> c) { for (Integer x : c) { } }");
        assert_eq!(cfg.branch_count(), 1);
    }

    #[test]
    fn do_while_runs_body_before_test() {
        let cfg = cfg_of(
            r#"void m(Iterator<Integer> it) {
                do { it.next(); } while (it.hasNext());
            }"#,
        );
        // Entry goes straight into the body (no pre-test), and the
        // condition block branches back.
        assert_eq!(cfg.branch_count(), 1);
        let test = cfg
            .blocks
            .iter()
            .find_map(|b| match &b.term {
                Some(Terminator::Branch { test: Some(t), .. }) => Some(t.clone()),
                _ => None,
            })
            .expect("hasNext test recognized");
        assert!(matches!(&test.callee, Callee::Api { method, .. } if method == "hasNext"));
    }

    #[test]
    fn switch_cases_fall_through_to_join() {
        let cfg = cfg_of(
            r#"void m(Row r, int x) {
                switch (x) {
                    case 1:
                        r.add(1);
                        break;
                    case 2:
                        r.add(2);
                    default:
                        r.add(3);
                }
                r.add(4);
            }"#,
        );
        // All four add() calls are reachable.
        let total: usize = cfg.reachable().iter().map(|&b| cfg.blocks[b].events.len()).sum();
        assert_eq!(total, 4);
        assert!(cfg.branch_count() >= 2, "case dispatch branches");
    }

    #[test]
    fn unreachable_code_does_not_poison_cfg() {
        let cfg = cfg_of("void m(Row r) { return; r.add(1); }");
        // add(1) sits in an unreachable block; reachable events are empty.
        let total: usize = cfg.reachable().iter().map(|&b| cfg.blocks[b].events.len()).sum();
        assert_eq!(total, 0);
    }
}
