//! # analysis
//!
//! Static-analysis substrates for the ANEK/PLURAL reproduction (Beckman &
//! Nori, PLDI 2011): program indexing and type resolution, permission-event
//! extraction, control-flow graphs, and the **Permissions Flow Graph** (PFG)
//! abstraction of §3.1 over which ANEK's probabilistic constraints are
//! generated.
//!
//! ## Example
//!
//! ```
//! use analysis::{Pfg, ProgramIndex};
//! use spec_lang::standard_api;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = java_syntax::parse(
//!     "class App { void m(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } } }",
//! )?;
//! let index = ProgramIndex::build([&unit]);
//! let api = standard_api();
//! let m = unit.type_named("App").expect("App").method_named("m").expect("m");
//! let pfg = Pfg::build(&index, &api, "App", m);
//! assert!(pfg.nodes.len() > 4); // param pre/post plus call-site structure
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod alias;
pub mod cfg;
pub mod events;
pub mod pfg;
pub mod types;

pub use alias::{AliasMap, AliasToken, TokenSource};
pub use cfg::{Block, BlockId, BranchTest, Cfg, Terminator};
pub use events::{flatten_expr, Event, EventKind, Operand, Place};
pub use pfg::{CallRole, NodeId, ParamNodes, Pfg, PfgNode, PfgNodeKind};
pub use types::{ref_type_name, Callee, MethodId, MethodInfo, ProgramIndex, TypeEnv};
