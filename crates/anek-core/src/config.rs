//! Tunable parameters of the inference (the paper's `h`, `t` and `MaxIters`).

use factor_graph::{BpOptions, BpSchedule};

/// Configuration of the ANEK inference.
///
/// "Each constraint generation rule is parametrized by some probability
/// `h ∈ [0,1]` that represents high probability, and is given as input to
/// the algorithm. Parametrization of these high probabilities allows us to
/// tune the performance of inference." (§3.3)
#[derive(Debug, Clone, PartialEq)]
pub struct InferConfig {
    /// `h1` — L1 strength: node equals its outgoing edge(s).
    pub h_outgoing: f64,
    /// `h2` — L1 strength for legal permission splitting at split nodes.
    pub h_split: f64,
    /// `h3` — L2 strength: node equals one of its incoming edges.
    pub h_incoming: f64,
    /// L3: probability that a field-write receiver is read-only (very low).
    pub p_field_write_readonly: f64,
    /// H1: elevated probability that constructors return `unique`.
    pub p_constructor_unique: f64,
    /// H2 strength: pre and post kinds of a parameter agree.
    pub h_pre_post: f64,
    /// H3: elevated probability that `create*` methods return `unique`.
    pub p_create_unique: f64,
    /// H4: low probability that `set*` receivers are read-only kinds.
    pub p_setter_readonly: f64,
    /// H5 strength: synchronized targets are `full`/`share`/`pure`.
    pub h_thread_shared: f64,
    /// Strength of the soft exactly-one-kind / exactly-one-state factors.
    ///
    /// The paper models each kind/state as its own Bernoulli variable and
    /// relies on evidence to separate them (Figure 8 gives the chosen kind
    /// 0.9 and all others 0.1); a soft mutual-exclusion factor makes the
    /// same assumption explicit in the model.
    pub h_exactly_one: f64,
    /// Prior given to specification-asserted facts (Figure 8's `B(0.9)`).
    pub p_spec_high: f64,
    /// Prior given to specification-denied facts (Figure 8's `B(0.1)`).
    pub p_spec_low: f64,
    /// Extraction threshold `t ∈ [0.5, 1)` (Figure 9, line 24).
    pub threshold: f64,
    /// `MaxIters` of the modular worklist (Figure 9, line 8).
    pub max_iters: usize,
    /// Enable the branch-sensitivity extension (the paper's future work):
    /// dynamic state tests contribute per-branch state evidence through the
    /// PFG's refinement nodes. ANEK proper is branch-insensitive (§4.2), so
    /// this defaults to `false`.
    pub branch_sensitive: bool,
    /// Minimum marginal change for a summary to count as updated.
    pub summary_epsilon: f64,
    /// Belief-propagation options for the per-method `Solve`.
    pub bp: BpOptions,
    /// Worker threads for the generation-parallel worklist: `0` means one
    /// per available core, `1` forces the sequential path. Results are
    /// identical for every value (see `infer`'s determinism notes).
    pub threads: usize,
}

impl Default for InferConfig {
    fn default() -> InferConfig {
        InferConfig {
            h_outgoing: 0.98,
            h_split: 0.98,
            h_incoming: 0.98,
            p_field_write_readonly: 0.05,
            p_constructor_unique: 0.85,
            h_pre_post: 0.75,
            p_create_unique: 0.85,
            p_setter_readonly: 0.1,
            h_thread_shared: 0.85,
            h_exactly_one: 0.9,
            p_spec_high: 0.9,
            p_spec_low: 0.1,
            threshold: 0.6,
            max_iters: 64,
            branch_sensitive: false,
            summary_epsilon: 0.01,
            bp: BpOptions {
                max_iterations: 40,
                tolerance: 1e-4,
                damping: 0.1,
                schedule: BpSchedule::Sweep,
            },
            threads: 1,
        }
    }
}

impl InferConfig {
    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics when a probability parameter is outside its documented range;
    /// intended for use at configuration boundaries.
    pub fn validate(&self) {
        for (name, v) in [
            ("h_outgoing", self.h_outgoing),
            ("h_split", self.h_split),
            ("h_incoming", self.h_incoming),
            ("h_pre_post", self.h_pre_post),
            ("h_thread_shared", self.h_thread_shared),
            ("h_exactly_one", self.h_exactly_one),
        ] {
            assert!(v > 0.5 && v < 1.0, "{name} must be in (0.5, 1), got {v}");
        }
        assert!(
            self.threshold >= 0.5 && self.threshold < 1.0,
            "threshold must be in [0.5, 1), got {}",
            self.threshold
        );
        assert!(self.max_iters > 0, "max_iters must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        InferConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let cfg = InferConfig { threshold: 0.4, ..InferConfig::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "h_outgoing")]
    fn weak_strength_rejected() {
        let cfg = InferConfig { h_outgoing: 0.5, ..InferConfig::default() };
        cfg.validate();
    }
}
