//! Tunable parameters of the inference (the paper's `h`, `t` and `MaxIters`)
//! plus the robustness knobs (model-size cap, degraded-mode fallback, and
//! the deterministic fault-injection switches the harness in
//! `corpus::faults` drives).

use analysis::types::MethodId;
use factor_graph::{BpOptions, BpPrecision, BpSchedule};

/// Deterministic fault-injection switches, normally all empty.
///
/// The fault harness (`corpus::faults::FaultPlan`) compiles its method
/// patterns into this struct; the model builder and the worklist consult it
/// to poison exactly the selected methods. A pattern is either an exact
/// `Class.method`, a class wildcard `Class.*`, or the global `*`.
///
/// Injection is *structural*, not scripted at the call level: a NaN entry
/// asks the model builder to emit a genuinely poisoned factor table, an
/// oversize entry pads the method's factor graph with real (unconstrained)
/// variables, and a panic entry raises a real panic inside the solve —
/// every fault travels through the same code paths an organic defect would.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultInjection {
    /// Methods whose solve panics (caught at the per-method boundary).
    pub panic_methods: Vec<String>,
    /// Methods whose skeleton receives a NaN-poisoned unary factor.
    pub nan_methods: Vec<String>,
    /// Methods whose factor graph is padded with this many extra variables
    /// (tripping `InferConfig::max_model_vars` when large enough).
    pub oversize_methods: Vec<(String, usize)>,
    /// Methods whose solve sleeps this many milliseconds before running —
    /// a replayable stand-in for a pathologically slow model, used to
    /// exercise deadline and cancellation paths. A slow fault never changes
    /// the solve's *result*, so (like `threads`) it is excluded from the
    /// store's config fingerprint and from `method_fault_token`.
    pub slow_methods: Vec<(String, u64)>,
}

impl FaultInjection {
    /// Whether no fault is configured at all.
    pub fn is_empty(&self) -> bool {
        self.panic_methods.is_empty()
            && self.nan_methods.is_empty()
            && self.oversize_methods.is_empty()
            && self.slow_methods.is_empty()
    }

    fn matches(pattern: &str, id: &MethodId) -> bool {
        if pattern == "*" {
            return true;
        }
        match pattern.split_once('.') {
            Some((class, "*")) => class == id.class,
            Some((class, method)) => class == id.class && method == id.method,
            None => false,
        }
    }

    /// Whether `id`'s solve should panic.
    pub fn should_panic(&self, id: &MethodId) -> bool {
        self.panic_methods.iter().any(|p| FaultInjection::matches(p, id))
    }

    /// Whether `id`'s skeleton gets a NaN factor.
    pub fn nan_factor(&self, id: &MethodId) -> bool {
        self.nan_methods.iter().any(|p| FaultInjection::matches(p, id))
    }

    /// Milliseconds `id`'s solve sleeps before running (`None` = no delay).
    pub fn slow_ms(&self, id: &MethodId) -> Option<u64> {
        self.slow_methods
            .iter()
            .filter(|(p, _)| FaultInjection::matches(p, id))
            .map(|&(_, ms)| ms)
            .max()
    }

    /// Extra padding variables for `id`'s factor graph (0 = none).
    pub fn oversize_extra(&self, id: &MethodId) -> usize {
        self.oversize_methods
            .iter()
            .filter(|(p, _)| FaultInjection::matches(p, id))
            .map(|&(_, n)| n)
            .max()
            .unwrap_or(0)
    }
}

/// Configuration of the ANEK inference.
///
/// "Each constraint generation rule is parametrized by some probability
/// `h ∈ [0,1]` that represents high probability, and is given as input to
/// the algorithm. Parametrization of these high probabilities allows us to
/// tune the performance of inference." (§3.3)
#[derive(Debug, Clone, PartialEq)]
pub struct InferConfig {
    /// `h1` — L1 strength: node equals its outgoing edge(s).
    pub h_outgoing: f64,
    /// `h2` — L1 strength for legal permission splitting at split nodes.
    pub h_split: f64,
    /// `h3` — L2 strength: node equals one of its incoming edges.
    pub h_incoming: f64,
    /// L3: probability that a field-write receiver is read-only (very low).
    pub p_field_write_readonly: f64,
    /// H1: elevated probability that constructors return `unique`.
    pub p_constructor_unique: f64,
    /// H2 strength: pre and post kinds of a parameter agree.
    pub h_pre_post: f64,
    /// H3: elevated probability that `create*` methods return `unique`.
    pub p_create_unique: f64,
    /// H4: low probability that `set*` receivers are read-only kinds.
    pub p_setter_readonly: f64,
    /// H5 strength: synchronized targets are `full`/`share`/`pure`.
    pub h_thread_shared: f64,
    /// Strength of the soft exactly-one-kind / exactly-one-state factors.
    ///
    /// The paper models each kind/state as its own Bernoulli variable and
    /// relies on evidence to separate them (Figure 8 gives the chosen kind
    /// 0.9 and all others 0.1); a soft mutual-exclusion factor makes the
    /// same assumption explicit in the model.
    pub h_exactly_one: f64,
    /// Prior given to specification-asserted facts (Figure 8's `B(0.9)`).
    pub p_spec_high: f64,
    /// Prior given to specification-denied facts (Figure 8's `B(0.1)`).
    pub p_spec_low: f64,
    /// Extraction threshold `t ∈ [0.5, 1)` (Figure 9, line 24).
    pub threshold: f64,
    /// `MaxIters` of the modular worklist (Figure 9, line 8).
    pub max_iters: usize,
    /// Enable the branch-sensitivity extension (the paper's future work):
    /// dynamic state tests contribute per-branch state evidence through the
    /// PFG's refinement nodes. ANEK proper is branch-insensitive (§4.2), so
    /// this defaults to `false`.
    pub branch_sensitive: bool,
    /// Minimum marginal change for a summary to count as updated.
    pub summary_epsilon: f64,
    /// Belief-propagation options for the per-method `Solve`.
    pub bp: BpOptions,
    /// Worker threads for the generation-parallel worklist: `0` means one
    /// per available core, `1` forces the sequential path, and explicit
    /// counts are clamped to the available cores (set `ANEK_OVERSUBSCRIBE=1`
    /// to lift the clamp). Results are identical for every value (see
    /// `infer`'s determinism notes).
    pub threads: usize,
    /// Hard cap on factor-graph variables per method model. A method whose
    /// model exceeds it is refused before solving and reported as
    /// `Failed { ModelTooLarge }`; every other method proceeds normally.
    pub max_model_vars: usize,
    /// When `true`, methods whose final solve did not converge publish
    /// their INIT prior-marginal summary instead of the non-converged
    /// marginals (reported as `Degraded { PriorFallback }`). Defaults to
    /// `false`, which keeps the paper's behavior of trusting the truncated
    /// solve — and keeps healthy-corpus output bit-identical.
    pub degraded_fallback: bool,
    /// When `true`, a bit-vector typestate screening pre-pass runs before
    /// any model is built: methods that are provably protocol-conformant
    /// *and* isolated in the program call graph (no program callees whose
    /// evidence they would publish, no program callers reading their
    /// summary) are skipped entirely — no PFG, no skeleton, no BP solves —
    /// and reported as `MethodOutcome::Screened`. Because skipped methods
    /// are exactly the ones whose solves publish nothing anyone reads, the
    /// specs and outcomes of every non-screened method are byte-identical
    /// to a full (unscreened) run whose worklist drains without hitting
    /// `max_iters`. Off by default.
    pub screen: bool,
    /// Deterministic fault injection (normally empty; see
    /// [`FaultInjection`]).
    pub faults: FaultInjection,
}

impl Default for InferConfig {
    fn default() -> InferConfig {
        InferConfig {
            h_outgoing: 0.98,
            h_split: 0.98,
            h_incoming: 0.98,
            p_field_write_readonly: 0.05,
            p_constructor_unique: 0.85,
            h_pre_post: 0.75,
            p_create_unique: 0.85,
            p_setter_readonly: 0.1,
            h_thread_shared: 0.85,
            h_exactly_one: 0.9,
            p_spec_high: 0.9,
            p_spec_low: 0.1,
            threshold: 0.6,
            max_iters: 64,
            branch_sensitive: false,
            summary_epsilon: 0.01,
            bp: BpOptions {
                max_iterations: 40,
                tolerance: 1e-4,
                damping: 0.1,
                schedule: BpSchedule::Sweep,
                update_budget: None,
                precision: BpPrecision::F64,
                deadline: None,
            },
            threads: 1,
            max_model_vars: 1 << 20,
            degraded_fallback: false,
            screen: false,
            faults: FaultInjection::default(),
        }
    }
}

impl InferConfig {
    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics when a probability parameter is outside its documented range;
    /// intended for use at configuration boundaries.
    pub fn validate(&self) {
        for (name, v) in [
            ("h_outgoing", self.h_outgoing),
            ("h_split", self.h_split),
            ("h_incoming", self.h_incoming),
            ("h_pre_post", self.h_pre_post),
            ("h_thread_shared", self.h_thread_shared),
            ("h_exactly_one", self.h_exactly_one),
        ] {
            assert!(v > 0.5 && v < 1.0, "{name} must be in (0.5, 1), got {v}");
        }
        assert!(
            self.threshold >= 0.5 && self.threshold < 1.0,
            "threshold must be in [0.5, 1), got {}",
            self.threshold
        );
        assert!(self.max_iters > 0, "max_iters must be positive");
        assert!(self.max_model_vars > 0, "max_model_vars must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        InferConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let cfg = InferConfig { threshold: 0.4, ..InferConfig::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "h_outgoing")]
    fn weak_strength_rejected() {
        let cfg = InferConfig { h_outgoing: 0.5, ..InferConfig::default() };
        cfg.validate();
    }

    #[test]
    fn fault_patterns_match_exact_class_wildcard_and_global() {
        let faults = FaultInjection {
            panic_methods: vec!["App.copy".into()],
            nan_methods: vec!["Row.*".into()],
            oversize_methods: vec![("*".into(), 7)],
            slow_methods: vec![("Row.first".into(), 25)],
        };
        assert!(faults.should_panic(&MethodId::new("App", "copy")));
        assert!(!faults.should_panic(&MethodId::new("App", "paste")));
        assert!(faults.nan_factor(&MethodId::new("Row", "anything")));
        assert!(!faults.nan_factor(&MethodId::new("App", "copy")));
        assert_eq!(faults.oversize_extra(&MethodId::new("X", "y")), 7);
        assert_eq!(faults.slow_ms(&MethodId::new("Row", "first")), Some(25));
        assert_eq!(faults.slow_ms(&MethodId::new("Row", "second")), None);
        assert!(!FaultInjection::default().should_panic(&MethodId::new("App", "copy")));
        assert!(FaultInjection::default().is_empty());
        assert!(!faults.is_empty());
    }
}
