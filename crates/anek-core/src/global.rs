//! Whole-program (non-modular) probabilistic inference — the paper's `Φ_P`
//! (Definition 1).
//!
//! "The probabilistic model `Φ_P` for the program `P` is the product of the
//! probabilistic models for all its methods", with `PARAMARG(c)` equality
//! constraints binding each method's parameters to the arguments at its call
//! sites. The paper notes that `ANEK-INFER` at a fixpoint computes the same
//! result as solving `Φ_P` directly — this module implements the direct
//! solve as an *ablation* of modularity: one factor graph for the entire
//! program, solved once. It demonstrates why the modular algorithm exists:
//! the monolithic graph's size (and BP cost per sweep) grows with the whole
//! program, and nothing can be reused when a single method changes.

use crate::config::InferConfig;
use crate::infer::{merged_states, InferResult};
use crate::model::{emit_skeleton, ModelCtx};
use crate::outcome::{DegradeReason, MethodOutcome};
use crate::summary::{MethodSummary, SlotProbs};
use analysis::pfg::{CallRole, Pfg, PfgNodeKind};
use analysis::types::{Callee, MethodId, ProgramIndex};
use factor_graph::{FactorGraph, Marginals};
use java_syntax::ast::CompilationUnit;
use spec_lang::{spec_of_method, ApiRegistry, PermissionKind};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Runs whole-program inference: one factor graph, one solve.
///
/// Returns the same shape as [`crate::infer()`](crate::infer::infer); `solves` is always 1.
pub fn infer_global(
    units: &[CompilationUnit],
    api: &ApiRegistry,
    cfg: &InferConfig,
) -> InferResult {
    cfg.validate();
    let start = Instant::now();
    let index = ProgramIndex::build(units.iter());
    let states = merged_states(units, api);
    let ctx = ModelCtx { index: &index, api, states: &states };

    let mut g = FactorGraph::new();
    let mut per_method: BTreeMap<MethodId, (Pfg, Vec<crate::constraints::SlotVars>)> =
        BTreeMap::new();
    let mut pre_annotated = BTreeSet::new();

    for unit in units {
        for t in &unit.types {
            for m in t.methods() {
                if m.body.is_none() {
                    continue;
                }
                let id = MethodId::new(&t.name, &m.name);
                let spec = spec_of_method(m).unwrap_or_default();
                if !spec.is_empty() {
                    pre_annotated.insert(id.clone());
                }
                let pfg = Pfg::build(&index, api, &t.name, m);
                // Skeleton only — no summaries; PARAMARG is explicit below.
                let (node_vars, _edge_vars) =
                    emit_skeleton(&mut g, ctx, &pfg, &spec, m.is_constructor(), cfg);
                per_method.insert(id, (pfg, node_vars));
            }
        }
    }

    // PARAMARG(c): soft equalities binding call-site slots to the callee's
    // parameter slots across method graphs.
    let ids: Vec<MethodId> = per_method.keys().cloned().collect();
    for id in &ids {
        let bindings: Vec<(usize, MethodId, Option<CallRole>, bool)> = {
            let (pfg, _) = &per_method[id];
            pfg.nodes
                .iter()
                .filter_map(|n| match &n.kind {
                    PfgNodeKind::CallPre { callee: Callee::Program(c), role, .. } => {
                        Some((n.id, c.clone(), Some(*role), true))
                    }
                    PfgNodeKind::CallPost { callee: Callee::Program(c), role, .. } => {
                        Some((n.id, c.clone(), Some(*role), false))
                    }
                    PfgNodeKind::CallResult { callee: Callee::Program(c), .. } => {
                        Some((n.id, c.clone(), None, false))
                    }
                    _ => None,
                })
                .collect()
        };
        for (node, callee, role, is_pre) in bindings {
            let Some((cpfg, cvars)) = per_method.get(&callee) else { continue };
            let target = match role {
                None => cpfg.result.as_ref().map(|(_, post)| *post),
                Some(CallRole::Receiver) => cpfg
                    .params
                    .iter()
                    .find(|p| p.name == "this")
                    .map(|p| if is_pre { p.pre } else { p.post }),
                Some(CallRole::Arg(i)) => {
                    let pname = index.method(&callee).and_then(|m| m.params.get(i).cloned());
                    pname.and_then(|(n, _)| {
                        cpfg.params.iter().find(|p| p.name == n).map(|p| {
                            if is_pre {
                                p.pre
                            } else {
                                p.post
                            }
                        })
                    })
                }
            };
            let Some(target) = target else { continue };
            let caller_slot = per_method[id].1[node].clone();
            crate::constraints::l1_equal(&mut g, &caller_slot, &cvars[target], cfg.h_incoming);
        }
    }

    // One global solve.
    let marginals = g.solve(&cfg.bp);

    // Read summaries and extract specs.
    let mut summaries: BTreeMap<MethodId, MethodSummary> = BTreeMap::new();
    let mut specs = BTreeMap::new();
    let mut confidence = BTreeMap::new();
    for (id, (pfg, node_vars)) in &per_method {
        let read_slot = |node: usize, marginals: &Marginals| -> SlotProbs {
            let vars = &node_vars[node];
            let mut slot = SlotProbs::uniform(ctx.states_of(pfg.nodes[node].type_name.as_deref()));
            for k in PermissionKind::ALL {
                slot.set_kind(k, marginals.prob(vars.kind(k)));
            }
            for (name, v) in &vars.states {
                slot.states.insert(name.clone(), marginals.prob(*v));
            }
            slot
        };
        let summary = MethodSummary {
            params: pfg
                .params
                .iter()
                .map(|p| {
                    (p.name.clone(), read_slot(p.pre, &marginals), read_slot(p.post, &marginals))
                })
                .collect(),
            result: pfg.result.as_ref().map(|(_, post)| read_slot(*post, &marginals)),
        };
        let (spec, conf) = summary.extract_spec_with_confidence(cfg.threshold);
        specs.insert(id.clone(), spec);
        confidence.insert(id.clone(), conf);
        summaries.insert(id.clone(), summary);
    }

    // One solve covers every method: the global graph's health is each
    // method's health.
    let mut reasons = Vec::new();
    if !marginals.converged {
        reasons.push(DegradeReason::BpNonConverged { iterations: marginals.iterations });
    }
    if marginals.guards.any() {
        reasons.push(DegradeReason::NumericClamped {
            non_finite: marginals.guards.non_finite,
            zero_sum: marginals.guards.zero_sum,
        });
    }
    let outcome = if reasons.is_empty() {
        MethodOutcome::Ok { iterations: marginals.iterations }
    } else {
        MethodOutcome::Degraded { reasons }
    };
    let outcomes = per_method.keys().map(|id| (id.clone(), outcome.clone())).collect();

    InferResult {
        specs,
        summaries,
        confidence,
        solves: 1,
        elapsed: start.elapsed(),
        pre_annotated,
        bp_iterations: marginals.iterations,
        message_updates: marginals.updates,
        discarded_solves: 0,
        speculative_solves: 0,
        commit_stall: Duration::ZERO,
        threads: 1,
        outcomes,
        nonconverged_solves: usize::from(!marginals.converged),
        numeric_guard_events: marginals.guards.non_finite + marginals.guards.zero_sum,
        memo_hits: 0,
        memo_misses: 0,
        callers: BTreeMap::new(),
        screened_methods: 0,
        deadline_hit: marginals.deadline_expired,
        deadline_truncated_solves: usize::from(marginals.deadline_expired),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer;
    use java_syntax::parse;
    use spec_lang::{standard_api, SpecTarget};

    #[test]
    fn global_infers_drain_like_modular() {
        let unit = parse(
            r#"class App {
                void drain(Iterator<Integer> it) {
                    while (it.hasNext()) { it.next(); }
                }
            }"#,
        )
        .unwrap();
        let api = standard_api();
        let cfg = InferConfig::default();
        let global = infer_global(std::slice::from_ref(&unit), &api, &cfg);
        let spec = &global.specs[&MethodId::new("App", "drain")];
        let atom = spec.requires.for_target(&SpecTarget::Param("it".into())).expect("atom");
        assert!(atom.kind.allows_write(), "got {}", atom.kind);
        assert_eq!(global.solves, 1);
    }

    #[test]
    fn global_propagates_requirements_across_methods() {
        // The PARAMARG equalities must carry level1's requirement to level2
        // in a single solve (where the modular algorithm needs re-analysis).
        let unit = parse(
            r#"class App {
                void level1(Iterator<Integer> it) { it.next(); }
                void level2(Iterator<Integer> it) { level1(it); }
            }"#,
        )
        .unwrap();
        let api = standard_api();
        let cfg = InferConfig {
            bp: factor_graph::BpOptions { max_iterations: 80, ..cfg_bp() },
            ..InferConfig::default()
        };
        let global = infer_global(std::slice::from_ref(&unit), &api, &cfg);
        let s = &global.summaries[&MethodId::new("App", "level2")];
        let (pre, _) = s.param("it").unwrap();
        assert!(
            pre.state("HASNEXT") > 0.5,
            "HASNEXT should flow through PARAMARG: {:.3}",
            pre.state("HASNEXT")
        );
    }

    fn cfg_bp() -> factor_graph::BpOptions {
        InferConfig::default().bp
    }

    #[test]
    fn global_and_modular_agree_on_figure3_headline() {
        let unit = parse(
            r#"class Row {
                Collection<Integer> entries;
                Iterator<Integer> createColIter() { return entries.iterator(); }
            }"#,
        )
        .unwrap();
        let api = standard_api();
        let cfg = InferConfig::default();
        let modular = infer(std::slice::from_ref(&unit), &api, &cfg);
        let global = infer_global(std::slice::from_ref(&unit), &api, &cfg);
        let id = MethodId::new("Row", "createColIter");
        let m_atom = modular.specs[&id].ensures.for_target(&SpecTarget::Result).cloned();
        let g_atom = global.specs[&id].ensures.for_target(&SpecTarget::Result).cloned();
        assert_eq!(
            m_atom.map(|a| a.kind),
            g_atom.map(|a| a.kind),
            "modular and global should agree at the fixpoint (paper §3.4)"
        );
    }
}
