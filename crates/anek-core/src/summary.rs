//! Probabilistic method summaries (paper §3.4).
//!
//! A summary records, for each pre/postcondition node of a method, the
//! current marginal probability of every permission-kind and abstract-state
//! variable. Summaries are what make `ANEK-INFER` modular: callers consume
//! callee summaries as evidence, and re-analysis refines them over time.

use spec_lang::{MethodSpec, PermAtom, PermClause, PermissionKind, SpecTarget, ALIVE};
use std::collections::BTreeMap;
use std::fmt;

/// Marginals for one object slot (a parameter's pre or post, or the result).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotProbs {
    /// `p(kind)` for each of the five kinds, indexed per
    /// [`PermissionKind::ALL`].
    pub kinds: [f64; 5],
    /// `p(state)` per abstract state of the slot's type.
    pub states: BTreeMap<String, f64>,
}

impl SlotProbs {
    /// An uninformative slot over the given states.
    pub fn uniform<S: Into<String>>(states: impl IntoIterator<Item = S>) -> SlotProbs {
        SlotProbs { kinds: [0.5; 5], states: states.into_iter().map(|s| (s.into(), 0.5)).collect() }
    }

    /// The probability of a kind.
    pub fn kind(&self, k: PermissionKind) -> f64 {
        let idx = PermissionKind::ALL.iter().position(|x| *x == k).expect("all kinds indexed");
        self.kinds[idx]
    }

    /// Sets the probability of a kind.
    pub fn set_kind(&mut self, k: PermissionKind, p: f64) {
        let idx = PermissionKind::ALL.iter().position(|x| *x == k).expect("all kinds indexed");
        self.kinds[idx] = p;
    }

    /// The probability of a state (0.5 when unknown).
    pub fn state(&self, s: &str) -> f64 {
        self.states.get(s).copied().unwrap_or(0.5)
    }

    /// Largest absolute difference against another slot (for convergence).
    pub fn max_delta(&self, other: &SlotProbs) -> f64 {
        let mut d = 0.0f64;
        for i in 0..5 {
            d = d.max((self.kinds[i] - other.kinds[i]).abs());
        }
        for (s, p) in &self.states {
            d = d.max((p - other.state(s)).abs());
        }
        d
    }

    /// Extracts the most desirable kind above threshold `t`: the *strongest*
    /// kind whose marginal clears the bar ("as returned permissions go,
    /// unique is the best choice whenever possible", §1).
    pub fn extract_kind(&self, t: f64) -> Option<PermissionKind> {
        let mut best: Option<(PermissionKind, f64)> = None;
        for k in PermissionKind::ALL {
            let p = self.kind(k);
            if p > t {
                match best {
                    Some((bk, _)) if bk.strength_rank() <= k.strength_rank() => {}
                    _ => best = Some((k, p)),
                }
            }
        }
        // ALL is strongest-first, so the first hit wins; keep the scan simple
        // by preferring lower strength_rank.
        best.map(|(k, _)| k)
    }

    /// Extracts the most likely state above threshold `t`.
    ///
    /// Because ANEK is branch-insensitive, loop-path states bleed into exit
    /// paths and can leave two states with similar middling marginals; a
    /// state is only committed to when it clearly dominates the runner-up
    /// (emitting no state atom is always sound — PLURAL treats it as
    /// `ALIVE`, the root).
    pub fn extract_state(&self, t: f64) -> Option<String> {
        const MARGIN: f64 = 1.2;
        let mut ranked: Vec<(&String, f64)> = self.states.iter().map(|(s, p)| (s, *p)).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let (best, p_best) = ranked.first()?;
        if *p_best <= t {
            return None;
        }
        if let Some((_, p_second)) = ranked.get(1) {
            if *p_best < MARGIN * *p_second {
                return None;
            }
        }
        Some((*best).clone())
    }
}

impl fmt::Display for SlotProbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in PermissionKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{k}={:.2}", self.kinds[i])?;
        }
        for (s, p) in &self.states {
            write!(f, " {s}={p:.2}")?;
        }
        Ok(())
    }
}

/// A probabilistic summary for one method: slots for each reference
/// parameter (pre and post) and the result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MethodSummary {
    /// Per-parameter (name, pre-slot, post-slot); receiver is named `this`.
    pub params: Vec<(String, SlotProbs, SlotProbs)>,
    /// Result slot, when the method returns a reference.
    pub result: Option<SlotProbs>,
}

impl MethodSummary {
    /// Finds a parameter's slots by name.
    pub fn param(&self, name: &str) -> Option<(&SlotProbs, &SlotProbs)> {
        self.params.iter().find(|(n, _, _)| n == name).map(|(_, pre, post)| (pre, post))
    }

    /// Largest marginal change against another summary.
    pub fn max_delta(&self, other: &MethodSummary) -> f64 {
        let mut d = 0.0f64;
        for ((_, pre_a, post_a), (_, pre_b, post_b)) in self.params.iter().zip(&other.params) {
            d = d.max(pre_a.max_delta(pre_b)).max(post_a.max_delta(post_b));
        }
        match (&self.result, &other.result) {
            (Some(a), Some(b)) => d = d.max(a.max_delta(b)),
            (None, None) => {}
            _ => d = 1.0,
        }
        d
    }

    /// Extracts the deterministic specification using threshold `t`
    /// (Figure 9, lines 22–29). State atoms over a trivial (`ALIVE`-only)
    /// space are left stateless.
    pub fn extract_spec(&self, t: f64) -> MethodSpec {
        self.extract_spec_with_confidence(t).0
    }

    /// Like [`MethodSummary::extract_spec`], additionally reporting the
    /// specification's *confidence*: the smallest marginal among the chosen
    /// atoms' kinds (1.0 for an empty spec). Downstream tooling can sort or
    /// filter inferred annotations by how sure the model is.
    pub fn extract_spec_with_confidence(&self, t: f64) -> (MethodSpec, f64) {
        let mut requires = PermClause::empty();
        let mut ensures = PermClause::empty();
        let mut confidence = 1.0f64;
        for (name, pre, post) in &self.params {
            let target =
                if name == "this" { SpecTarget::This } else { SpecTarget::Param(name.clone()) };
            if let Some(kind) = pre.extract_kind(t) {
                confidence = confidence.min(pre.kind(kind));
                let state = pre.extract_state(t).filter(|s| s != ALIVE || pre.states.len() > 1);
                requires.atoms.push(PermAtom { kind, target: target.clone(), state });
            }
            if let Some(kind) = post.extract_kind(t) {
                confidence = confidence.min(post.kind(kind));
                let state = post.extract_state(t).filter(|s| s != ALIVE || post.states.len() > 1);
                ensures.atoms.push(PermAtom { kind, target: target.clone(), state });
            }
        }
        if let Some(result) = &self.result {
            if let Some(kind) = result.extract_kind(t) {
                confidence = confidence.min(result.kind(kind));
                let state =
                    result.extract_state(t).filter(|s| s != ALIVE || result.states.len() > 1);
                ensures.atoms.push(PermAtom { kind, target: SpecTarget::Result, state });
            }
        }
        let spec = MethodSpec { requires, ensures, true_indicates: None, false_indicates: None };
        (spec, confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iterator_slot() -> SlotProbs {
        SlotProbs::uniform(["ALIVE", "HASNEXT", "END"])
    }

    #[test]
    fn kind_get_set_round_trip() {
        let mut s = iterator_slot();
        s.set_kind(PermissionKind::Full, 0.93);
        assert!((s.kind(PermissionKind::Full) - 0.93).abs() < 1e-12);
        assert!((s.kind(PermissionKind::Pure) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn extract_prefers_strongest_kind() {
        let mut s = iterator_slot();
        s.set_kind(PermissionKind::Pure, 0.9);
        s.set_kind(PermissionKind::Unique, 0.8);
        // Both clear a 0.7 bar; unique is stronger and wins (paper §1).
        assert_eq!(s.extract_kind(0.7), Some(PermissionKind::Unique));
        // With a 0.85 bar only pure clears.
        assert_eq!(s.extract_kind(0.85), Some(PermissionKind::Pure));
        // Nothing clears 0.95.
        assert_eq!(s.extract_kind(0.95), None);
    }

    #[test]
    fn extract_state_takes_argmax() {
        let mut s = iterator_slot();
        s.states.insert("HASNEXT".into(), 0.7);
        s.states.insert("ALIVE".into(), 0.9);
        assert_eq!(s.extract_state(0.6), Some("ALIVE".into()));
    }

    #[test]
    fn spec_extraction_builds_clauses() {
        let mut pre = iterator_slot();
        pre.set_kind(PermissionKind::Full, 0.95);
        pre.states.insert("HASNEXT".into(), 0.92);
        let mut post = iterator_slot();
        post.set_kind(PermissionKind::Full, 0.95);
        post.states.insert("ALIVE".into(), 0.88);
        let summary = MethodSummary { params: vec![("this".into(), pre, post)], result: None };
        let spec = summary.extract_spec(0.6);
        assert_eq!(spec.requires.to_string(), "full(this) in HASNEXT");
        assert_eq!(spec.ensures.to_string(), "full(this) in ALIVE");
    }

    #[test]
    fn trivial_state_space_gives_stateless_atoms() {
        let mut pre = SlotProbs::uniform(["ALIVE"]);
        pre.set_kind(PermissionKind::Pure, 0.9);
        pre.states.insert("ALIVE".into(), 0.95);
        let summary = MethodSummary { params: vec![("x".into(), pre.clone(), pre)], result: None };
        let spec = summary.extract_spec(0.6);
        assert_eq!(spec.requires.to_string(), "pure(x)");
    }

    #[test]
    fn below_threshold_yields_empty_spec() {
        let summary = MethodSummary {
            params: vec![("this".into(), iterator_slot(), iterator_slot())],
            result: Some(iterator_slot()),
        };
        assert!(summary.extract_spec(0.6).is_empty());
    }

    #[test]
    fn confidence_tracks_weakest_atom() {
        let mut pre = iterator_slot();
        pre.set_kind(PermissionKind::Full, 0.95);
        let mut post = iterator_slot();
        post.set_kind(PermissionKind::Full, 0.7);
        let summary = MethodSummary { params: vec![("this".into(), pre, post)], result: None };
        let (spec, confidence) = summary.extract_spec_with_confidence(0.6);
        assert_eq!(spec.requires.atoms.len(), 1);
        assert_eq!(spec.ensures.atoms.len(), 1);
        assert!((confidence - 0.7).abs() < 1e-9, "weakest chosen atom wins: {confidence}");
        // Empty specs are fully confident (nothing claimed).
        let empty = MethodSummary {
            params: vec![("this".into(), iterator_slot(), iterator_slot())],
            result: None,
        };
        assert_eq!(empty.extract_spec_with_confidence(0.6).1, 1.0);
    }

    #[test]
    fn max_delta_detects_changes() {
        let a = MethodSummary {
            params: vec![("this".into(), iterator_slot(), iterator_slot())],
            result: None,
        };
        let mut b = a.clone();
        assert_eq!(a.max_delta(&b), 0.0);
        b.params[0].1.set_kind(PermissionKind::Unique, 0.8);
        assert!((a.max_delta(&b) - 0.3).abs() < 1e-12);
    }
}
