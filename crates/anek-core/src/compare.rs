//! Specification-quality comparison (paper §4.3, Table 4).
//!
//! The paper compared ANEK's inferred annotations against Bierhoff's
//! hand-written ones and bucketed each method into six categories. This
//! module reproduces that categorization given the hand ("gold") spec, the
//! inferred spec, and the generator's ground truth.

use spec_lang::{MethodSpec, PermAtom, PermClause, ALIVE};
use std::fmt;

/// The six Table 4 buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpecDiff {
    /// Inferred exactly matches the hand annotation.
    Same,
    /// ANEK added a correct spec where the hand version had none.
    AddedHelpful,
    /// ANEK added a spec that is stronger than needed (future proof burden).
    AddedConstraining,
    /// ANEK failed to infer a spec that the hand version had.
    Removed,
    /// ANEK changed an existing spec to a more restrictive (but not wrong)
    /// one.
    MoreRestrictive,
    /// ANEK's spec is wrong outright.
    Wrong,
}

impl SpecDiff {
    /// All buckets in Table 4's row order.
    pub const ALL: [SpecDiff; 6] = [
        SpecDiff::Same,
        SpecDiff::AddedHelpful,
        SpecDiff::AddedConstraining,
        SpecDiff::Removed,
        SpecDiff::MoreRestrictive,
        SpecDiff::Wrong,
    ];

    /// Table 4's row label.
    pub fn label(self) -> &'static str {
        match self {
            SpecDiff::Same => "Same",
            SpecDiff::AddedHelpful => "ANEK Added Helpful Spec.",
            SpecDiff::AddedConstraining => "ANEK Added Constraining Spec.",
            SpecDiff::Removed => "ANEK Removed Spec.",
            SpecDiff::MoreRestrictive => "ANEK Changed Spec., More Restrictive",
            SpecDiff::Wrong => "ANEK Changed Spec., Wrong",
        }
    }
}

impl fmt::Display for SpecDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

fn state_eq(a: Option<&str>, b: Option<&str>) -> bool {
    a.unwrap_or(ALIVE) == b.unwrap_or(ALIVE)
}

fn atom_eq(a: &PermAtom, b: &PermAtom) -> bool {
    a.target == b.target && a.kind == b.kind && state_eq(a.state.as_deref(), b.state.as_deref())
}

/// Whether atom `a` is at least as strong as atom `b` for the same target:
/// its permission kind satisfies `b`'s and its state constraint implies
/// `b`'s (same state, or `b` only demands `ALIVE`).
fn atom_at_least(a: &PermAtom, b: &PermAtom) -> bool {
    a.target == b.target
        && a.kind.satisfies(b.kind)
        && (state_eq(a.state.as_deref(), b.state.as_deref())
            || b.state.as_deref().unwrap_or(ALIVE) == ALIVE)
}

fn clause_eq(a: &PermClause, b: &PermClause) -> bool {
    a.atoms.len() == b.atoms.len() && a.atoms.iter().all(|x| b.atoms.iter().any(|y| atom_eq(x, y)))
}

/// Every atom demanded by `weak` is covered by an at-least-as-strong atom
/// in `strong`.
fn clause_covers(strong: &PermClause, weak: &PermClause) -> bool {
    weak.atoms.iter().all(|w| strong.atoms.iter().any(|s| atom_at_least(s, w)))
}

fn spec_eq(a: &MethodSpec, b: &MethodSpec) -> bool {
    clause_eq(&a.requires, &b.requires) && clause_eq(&a.ensures, &b.ensures)
}

/// Inferred covers gold and adds strength somewhere.
fn spec_covers(inferred: &MethodSpec, gold: &MethodSpec) -> bool {
    clause_covers(&inferred.requires, &gold.requires)
        && clause_covers(&inferred.ensures, &gold.ensures)
}

/// Categorizes one method's inferred spec against the gold (hand) spec.
///
/// `truth` is the generator's ground-truth spec for the method — the
/// maximally-informative correct annotation — used to tell *helpful*
/// additions from *constraining* ones. Returns `None` when both gold and
/// inferred are empty (nothing to compare).
pub fn compare_specs(
    gold: &MethodSpec,
    inferred: &MethodSpec,
    truth: Option<&MethodSpec>,
) -> Option<SpecDiff> {
    // Dynamic state tests (`@TrueIndicates`/`@FalseIndicates`) are specs
    // ANEK "currently does not attempt to infer" (§4.3) — a hand-written
    // state test the inference cannot reproduce lands in the Removed
    // bucket, exactly like the paper's three.
    if gold.is_state_test() && !inferred.is_state_test() {
        return Some(SpecDiff::Removed);
    }
    let gold_empty = gold.requires.is_empty() && gold.ensures.is_empty();
    let inf_empty = inferred.requires.is_empty() && inferred.ensures.is_empty();
    match (gold_empty, inf_empty) {
        (true, true) => None,
        (false, true) => Some(SpecDiff::Removed),
        (true, false) => {
            let truth = truth.unwrap_or(gold);
            if spec_eq(inferred, truth) || spec_covers(truth, inferred) {
                // Matches the truth, or is weaker than (implied by) it:
                // correct and imposes no extra burden.
                Some(SpecDiff::AddedHelpful)
            } else if spec_covers(inferred, truth) {
                // Strictly stronger than the truth requires.
                Some(SpecDiff::AddedConstraining)
            } else {
                Some(SpecDiff::Wrong)
            }
        }
        (false, false) => {
            if spec_eq(inferred, gold) {
                Some(SpecDiff::Same)
            } else if spec_covers(inferred, gold) {
                Some(SpecDiff::MoreRestrictive)
            } else {
                Some(SpecDiff::Wrong)
            }
        }
    }
}

/// Tallies categories over a set of methods (the Table 4 rows).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffTally {
    counts: std::collections::BTreeMap<SpecDiff, usize>,
}

impl DiffTally {
    /// An empty tally.
    pub fn new() -> DiffTally {
        DiffTally::default()
    }

    /// Records one comparison.
    pub fn record(&mut self, diff: SpecDiff) {
        *self.counts.entry(diff).or_insert(0) += 1;
    }

    /// The count for a bucket.
    pub fn count(&self, diff: SpecDiff) -> usize {
        self.counts.get(&diff).copied().unwrap_or(0)
    }

    /// Total comparisons recorded.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }
}

impl fmt::Display for DiffTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in SpecDiff::ALL {
            writeln!(f, "{:42} {}", d.label(), self.count(d))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec_lang::parse_clause;

    fn spec(req: &str, ens: &str) -> MethodSpec {
        MethodSpec {
            requires: parse_clause(req).unwrap(),
            ensures: parse_clause(ens).unwrap(),
            true_indicates: None,
            false_indicates: None,
        }
    }

    #[test]
    fn identical_specs_are_same() {
        let g = spec("full(this) in HASNEXT", "full(this) in ALIVE");
        assert_eq!(compare_specs(&g, &g.clone(), None), Some(SpecDiff::Same));
    }

    #[test]
    fn alive_and_no_state_are_equal() {
        let g = spec("pure(this) in ALIVE", "");
        let i = spec("pure(this)", "");
        assert_eq!(compare_specs(&g, &i, None), Some(SpecDiff::Same));
    }

    #[test]
    fn empty_both_is_none() {
        assert_eq!(compare_specs(&MethodSpec::default(), &MethodSpec::default(), None), None);
    }

    #[test]
    fn missing_inference_is_removed() {
        let g = spec("pure(this)", "");
        assert_eq!(compare_specs(&g, &MethodSpec::default(), None), Some(SpecDiff::Removed));
    }

    #[test]
    fn added_matching_truth_is_helpful() {
        let truth = spec("", "unique(result) in ALIVE");
        let inferred = spec("", "unique(result) in ALIVE");
        assert_eq!(
            compare_specs(&MethodSpec::default(), &inferred, Some(&truth)),
            Some(SpecDiff::AddedHelpful)
        );
    }

    #[test]
    fn added_weaker_than_truth_is_helpful() {
        let truth = spec("", "unique(result)");
        let inferred = spec("", "full(result)");
        assert_eq!(
            compare_specs(&MethodSpec::default(), &inferred, Some(&truth)),
            Some(SpecDiff::AddedHelpful)
        );
    }

    #[test]
    fn added_stronger_than_truth_is_constraining() {
        let truth = spec("", "full(result)");
        let inferred = spec("", "unique(result)");
        assert_eq!(
            compare_specs(&MethodSpec::default(), &inferred, Some(&truth)),
            Some(SpecDiff::AddedConstraining)
        );
    }

    #[test]
    fn stronger_than_gold_is_more_restrictive() {
        let gold = spec("share(x)", "");
        let inferred = spec("full(x)", "");
        assert_eq!(compare_specs(&gold, &inferred, None), Some(SpecDiff::MoreRestrictive));
    }

    #[test]
    fn incompatible_change_is_wrong() {
        let gold = spec("full(this) in HASNEXT", "");
        let inferred = spec("pure(this) in END", "");
        assert_eq!(compare_specs(&gold, &inferred, None), Some(SpecDiff::Wrong));
    }

    #[test]
    fn tally_accumulates() {
        let mut t = DiffTally::new();
        t.record(SpecDiff::Same);
        t.record(SpecDiff::Same);
        t.record(SpecDiff::Wrong);
        assert_eq!(t.count(SpecDiff::Same), 2);
        assert_eq!(t.count(SpecDiff::Wrong), 1);
        assert_eq!(t.count(SpecDiff::Removed), 0);
        assert_eq!(t.total(), 3);
        let shown = t.to_string();
        assert!(shown.contains("Same"));
        assert!(shown.contains("Wrong"));
    }
}
