//! Per-method probabilistic models (the paper's `𝒢m`, Definition 1).
//!
//! [`MethodModel::build`] turns a method's PFG into a factor graph:
//! variables for every node and edge (§3.2), priors from any existing
//! specifications (Figure 8), the logical constraints L1–L3, the heuristics
//! H1–H5, and — for call sites — the `PARAMARG` binding, realized either
//! from API specifications or from the current probabilistic summaries of
//! program callees (`APPLYSUMMARY`, Figure 9 line 13).

use crate::config::InferConfig;
use crate::constraints::{self, SlotVars};
use crate::summary::{MethodSummary, SlotProbs};
use analysis::pfg::{CallRole, NodeId, Pfg, PfgNodeKind};
use analysis::types::{Callee, MethodId, ProgramIndex};
use factor_graph::{CompiledGraph, Factor, FactorGraph, Marginals, Scratch, VarId};
use spec_lang::{ApiRegistry, MethodSpec, PermissionKind, SpecTarget, StateRegistry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything the model builder needs to know about the enclosing program.
#[derive(Debug, Clone, Copy)]
pub struct ModelCtx<'a> {
    /// Index of the program under inference.
    pub index: &'a ProgramIndex,
    /// Library specifications.
    pub api: &'a ApiRegistry,
    /// Merged state spaces (API + program-declared).
    pub states: &'a StateRegistry,
}

impl<'a> ModelCtx<'a> {
    /// The state names a slot of `type_name` ranges over.
    pub fn states_of(&self, type_name: Option<&str>) -> Vec<String> {
        match type_name {
            Some(t) => self.states.states_of(t),
            None => vec![spec_lang::ALIVE.to_string()],
        }
    }
}

/// Evidence one call site contributes about its *callee*'s specification:
/// the marginals observed at the caller's `CallPre`/`CallPost`/`CallResult`
/// nodes. Feeding these back into the callee's model is the other half of
/// the `PARAMARG` binding — it is how the paper's Figure 3 conflict (one
/// site demanding `HASNEXT`, many implying `ALIVE`) aggregates onto
/// `createColIter`'s summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CallerEvidence {
    /// Per callee-parameter-name: observed precondition marginals.
    pub param_pre: BTreeMap<String, SlotProbs>,
    /// Per callee-parameter-name: observed postcondition marginals.
    pub param_post: BTreeMap<String, SlotProbs>,
    /// Observed result marginals.
    pub result: Option<SlotProbs>,
}

impl CallerEvidence {
    /// Largest marginal change against another snapshot.
    pub fn max_delta(&self, other: &CallerEvidence) -> f64 {
        let mut d = 0.0f64;
        for (k, a) in &self.param_pre {
            match other.param_pre.get(k) {
                Some(b) => d = d.max(a.max_delta(b)),
                None => return 1.0,
            }
        }
        for (k, a) in &self.param_post {
            match other.param_post.get(k) {
                Some(b) => d = d.max(a.max_delta(b)),
                None => return 1.0,
            }
        }
        match (&self.result, &other.result) {
            (Some(a), Some(b)) => d = d.max(a.max_delta(b)),
            (None, None) => {}
            _ => return 1.0,
        }
        d
    }
}

/// The factor-graph model of one method.
#[derive(Debug)]
pub struct MethodModel {
    /// The underlying PFG (shared, never cloned per solve).
    pub pfg: Arc<Pfg>,
    /// The factor graph.
    pub graph: FactorGraph,
    /// Variables per PFG node.
    pub node_vars: Vec<SlotVars>,
    /// Variables per PFG edge (parallel to `pfg.edges`).
    pub edge_vars: Vec<SlotVars>,
}

impl MethodModel {
    /// Builds the model for a method.
    ///
    /// `own_spec` is the method's existing annotation (its atoms become
    /// Figure 8-style priors); `summaries` holds the current probabilistic
    /// summaries of program methods (used at call sites).
    pub fn build(
        ctx: ModelCtx<'_>,
        pfg: Pfg,
        own_spec: &MethodSpec,
        is_constructor: bool,
        summaries: &BTreeMap<MethodId, MethodSummary>,
        cfg: &InferConfig,
    ) -> MethodModel {
        MethodModel::build_with_evidence(ctx, pfg, own_spec, is_constructor, summaries, &[], cfg)
    }

    /// Like [`MethodModel::build`], additionally installing caller-side
    /// evidence (marginals observed at this method's call sites in other
    /// methods) onto the pre/post/result nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_evidence(
        ctx: ModelCtx<'_>,
        pfg: Pfg,
        own_spec: &MethodSpec,
        is_constructor: bool,
        summaries: &BTreeMap<MethodId, MethodSummary>,
        caller_evidence: &[CallerEvidence],
        cfg: &InferConfig,
    ) -> MethodModel {
        let pfg = Arc::new(pfg);
        let mut g = FactorGraph::new();
        let (node_vars, edge_vars) =
            emit_skeleton(&mut g, ctx, &pfg, own_spec, is_constructor, cfg);
        for (v, p) in dynamic_priors(ctx, &pfg, &node_vars, summaries, caller_evidence) {
            g.add_factor(Factor::unary(v, p));
        }
        MethodModel { pfg, graph: g, node_vars, edge_vars }
    }

    /// Reads, from solved marginals, the evidence each *program* call site
    /// provides about its callee — keyed by callee, one entry per site.
    pub fn read_call_evidence(
        &self,
        ctx: ModelCtx<'_>,
        marginals: &Marginals,
    ) -> BTreeMap<MethodId, BTreeMap<java_syntax::ExprId, CallerEvidence>> {
        read_call_evidence_from(ctx, &self.pfg, &self.node_vars, marginals)
    }

    /// Structural well-formedness of the model: the slot tables must stay
    /// parallel to the PFG and every slot variable must exist in the factor
    /// graph. Returns human-readable problems, empty when the model is
    /// sound. The lint crate's IR verifier surfaces these as `IR003`
    /// diagnostics at pipeline stage boundaries.
    pub fn check_well_formed(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.node_vars.len() != self.pfg.nodes.len() {
            problems.push(format!(
                "node_vars has {} entries for {} PFG nodes",
                self.node_vars.len(),
                self.pfg.nodes.len()
            ));
        }
        if self.edge_vars.len() != self.pfg.edges.len() {
            problems.push(format!(
                "edge_vars has {} entries for {} PFG edges",
                self.edge_vars.len(),
                self.pfg.edges.len()
            ));
        }
        let nvars = self.graph.num_vars();
        let mut check_slot = |what: &str, i: usize, slot: &SlotVars| {
            for v in slot.kinds.iter().chain(slot.states.iter().map(|(_, v)| v)) {
                if v.0 as usize >= nvars {
                    problems.push(format!(
                        "{what} {i}: slot variable {} out of bounds ({nvars} graph vars)",
                        v.0
                    ));
                    return;
                }
            }
        };
        for (i, slot) in self.node_vars.iter().enumerate() {
            check_slot("node", i, slot);
        }
        for (i, slot) in self.edge_vars.iter().enumerate() {
            check_slot("edge", i, slot);
        }
        problems
    }

    /// Solves the model and reads the method summary off the pre/post/result
    /// nodes (Figure 9's `Solve` + `UPDATESUMMARY` read-out).
    pub fn solve(&self, ctx: ModelCtx<'_>, cfg: &InferConfig) -> MethodSummary {
        let marginals = self.graph.solve(&cfg.bp);
        self.read_summary(ctx, &marginals)
    }

    /// Extracts the summary from precomputed marginals.
    pub fn read_summary(&self, ctx: ModelCtx<'_>, marginals: &Marginals) -> MethodSummary {
        read_summary_from(ctx, &self.pfg, &self.node_vars, marginals)
    }
}

/// Reads one node's slot marginals into a [`SlotProbs`].
fn read_slot_from(
    ctx: ModelCtx<'_>,
    pfg: &Pfg,
    node_vars: &[SlotVars],
    marginals: &Marginals,
    node: NodeId,
) -> SlotProbs {
    let vars = &node_vars[node];
    let mut slot = SlotProbs::uniform(ctx.states_of(pfg.nodes[node].type_name.as_deref()));
    for k in PermissionKind::ALL {
        slot.set_kind(k, marginals.prob(vars.kind(k)));
    }
    for (name, v) in &vars.states {
        slot.states.insert(name.clone(), marginals.prob(*v));
    }
    slot
}

/// The summary read-out shared by [`MethodModel`] and [`MethodSkeleton`].
fn read_summary_from(
    ctx: ModelCtx<'_>,
    pfg: &Pfg,
    node_vars: &[SlotVars],
    marginals: &Marginals,
) -> MethodSummary {
    MethodSummary {
        params: pfg
            .params
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    read_slot_from(ctx, pfg, node_vars, marginals, p.pre),
                    read_slot_from(ctx, pfg, node_vars, marginals, p.post),
                )
            })
            .collect(),
        result: pfg
            .result
            .as_ref()
            .map(|(_, post)| read_slot_from(ctx, pfg, node_vars, marginals, *post)),
    }
}

/// The call-evidence read-out shared by [`MethodModel`] and
/// [`MethodSkeleton`].
fn read_call_evidence_from(
    ctx: ModelCtx<'_>,
    pfg: &Pfg,
    node_vars: &[SlotVars],
    marginals: &Marginals,
) -> BTreeMap<MethodId, BTreeMap<java_syntax::ExprId, CallerEvidence>> {
    let mut out: BTreeMap<MethodId, BTreeMap<java_syntax::ExprId, CallerEvidence>> =
        BTreeMap::new();
    let param_name = |id: &MethodId, role: CallRole| -> Option<String> {
        match role {
            CallRole::Receiver => Some("this".to_string()),
            CallRole::Arg(i) => {
                ctx.index.method(id).and_then(|m| m.params.get(i)).map(|(n, _)| n.clone())
            }
        }
    };
    for n in &pfg.nodes {
        match &n.kind {
            PfgNodeKind::CallPre { callee: Callee::Program(id), role, site } => {
                if let Some(pname) = param_name(id, *role) {
                    out.entry(id.clone())
                        .or_default()
                        .entry(*site)
                        .or_default()
                        .param_pre
                        .insert(pname, read_slot_from(ctx, pfg, node_vars, marginals, n.id));
                }
            }
            PfgNodeKind::CallPost { callee: Callee::Program(id), role, site } => {
                if let Some(pname) = param_name(id, *role) {
                    out.entry(id.clone())
                        .or_default()
                        .entry(*site)
                        .or_default()
                        .param_post
                        .insert(pname, read_slot_from(ctx, pfg, node_vars, marginals, n.id));
                }
            }
            PfgNodeKind::CallResult { callee: Callee::Program(id), site } => {
                out.entry(id.clone()).or_default().entry(*site).or_default().result =
                    Some(read_slot_from(ctx, pfg, node_vars, marginals, n.id));
            }
            _ => {}
        }
    }
    out
}

/// A method's *static* model — everything that never changes between
/// re-solves of the Figure 9 worklist — compiled once into the flat BP
/// arena. Re-solving a method is then just [`MethodSkeleton::stamp`] (derive
/// the current summary/evidence unary priors) + [`MethodSkeleton::solve`],
/// with no PFG clone, no factor re-tabulation and no graph recompilation.
#[derive(Debug)]
pub struct MethodSkeleton {
    /// The underlying PFG, shared with whoever built it.
    pub pfg: Arc<Pfg>,
    /// The static factor graph (variables, L1–L3, heuristics, own-spec and
    /// API-callee priors).
    pub graph: FactorGraph,
    /// Variables per PFG node.
    pub node_vars: Vec<SlotVars>,
    /// Variables per PFG edge (parallel to `pfg.edges`).
    pub edge_vars: Vec<SlotVars>,
    compiled: CompiledGraph,
}

impl MethodSkeleton {
    /// Builds and compiles the static skeleton of a method's model.
    pub fn build(
        ctx: ModelCtx<'_>,
        pfg: Arc<Pfg>,
        own_spec: &MethodSpec,
        is_constructor: bool,
        cfg: &InferConfig,
    ) -> MethodSkeleton {
        let mut g = FactorGraph::new();
        let (node_vars, edge_vars) =
            emit_skeleton(&mut g, ctx, &pfg, own_spec, is_constructor, cfg);
        let compiled = CompiledGraph::compile(&g);
        MethodSkeleton { pfg, graph: g, node_vars, edge_vars, compiled }
    }

    /// Derives the dynamic unary priors for the current summaries and
    /// caller evidence — the only part of the model that changes between
    /// worklist re-solves.
    pub fn stamp(
        &self,
        ctx: ModelCtx<'_>,
        summaries: &BTreeMap<MethodId, MethodSummary>,
        caller_evidence: &[CallerEvidence],
    ) -> Vec<(VarId, f64)> {
        dynamic_priors(ctx, &self.pfg, &self.node_vars, summaries, caller_evidence)
    }

    /// Solves the compiled skeleton with the stamped priors overlaid.
    ///
    /// Equivalent (bit-for-bit under the sweep schedule) to rebuilding the
    /// full [`MethodModel`] with the same summaries/evidence and solving its
    /// graph.
    pub fn solve(&self, extras: &[(VarId, f64)], cfg: &InferConfig) -> Marginals {
        self.compiled.solve_stamped(extras, &cfg.bp)
    }

    /// [`MethodSkeleton::solve`] with caller-provided scratch buffers —
    /// bit-identical results, but message arrays and queue state are
    /// recycled across solves instead of reallocated (the worklist gives
    /// each worker thread one [`Scratch`] for its whole lifetime).
    pub fn solve_scratch(
        &self,
        extras: &[(VarId, f64)],
        cfg: &InferConfig,
        scratch: &mut Scratch,
    ) -> Marginals {
        self.compiled.solve_stamped_scratch(extras, &cfg.bp, scratch)
    }

    /// Reads the method summary off solved marginals.
    pub fn read_summary(&self, ctx: ModelCtx<'_>, marginals: &Marginals) -> MethodSummary {
        read_summary_from(ctx, &self.pfg, &self.node_vars, marginals)
    }

    /// Reads the per-callee call-site evidence off solved marginals.
    pub fn read_call_evidence(
        &self,
        ctx: ModelCtx<'_>,
        marginals: &Marginals,
    ) -> BTreeMap<MethodId, BTreeMap<java_syntax::ExprId, CallerEvidence>> {
        read_call_evidence_from(ctx, &self.pfg, &self.node_vars, marginals)
    }
}

/// Emits one method's *static* model into `g`: variables, the logical
/// constraints L1–L3, the heuristics H1–H5, own-spec priors and API-callee
/// priors. Shared by the per-method models and the whole-program ablation
/// model. Everything emitted here is independent of the worklist state;
/// program-callee summaries and caller evidence are dynamic and handled by
/// [`dynamic_priors`].
pub(crate) fn emit_skeleton(
    g: &mut FactorGraph,
    ctx: ModelCtx<'_>,
    pfg: &Pfg,
    own_spec: &MethodSpec,
    is_constructor: bool,
    cfg: &InferConfig,
) -> (Vec<SlotVars>, Vec<SlotVars>) {
    // ---- Variables (§3.2) ----
    let node_vars: Vec<SlotVars> = pfg
        .nodes
        .iter()
        .map(|n| {
            let states = ctx.states_of(n.type_name.as_deref());
            SlotVars::alloc(g, &format!("{}:n{}", pfg.method, n.id), &states)
        })
        .collect();
    let edge_vars: Vec<SlotVars> = pfg
        .edges
        .iter()
        .enumerate()
        .map(|(i, (a, _))| {
            let states = ctx.states_of(pfg.nodes[*a].type_name.as_deref());
            SlotVars::alloc(g, &format!("{}:e{i}", pfg.method, i = i), &states)
        })
        .collect();

    for slot in node_vars.iter().chain(edge_vars.iter()) {
        constraints::exactly_one(g, slot, cfg.h_exactly_one);
    }

    // Edge lookup: node -> outgoing/incoming edge indices.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); pfg.nodes.len()];
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); pfg.nodes.len()];
    for (i, (a, b)) in pfg.edges.iter().enumerate() {
        out_edges[*a].push(i);
        in_edges[*b].push(i);
    }

    // ---- L1: outgoing (Eq. 1 and 2) ----
    for n in &pfg.nodes {
        let outs = &out_edges[n.id];
        if outs.is_empty() {
            continue;
        }
        if pfg.is_split(n.id) && outs.len() > 1 {
            let edges: Vec<&SlotVars> = outs.iter().map(|&i| &edge_vars[i]).collect();
            constraints::l1_split(g, &node_vars[n.id], &edges, cfg.h_split);
        } else {
            // Single successor, or branch fan-out: the permission is the
            // same along every outgoing edge.
            for &i in outs {
                constraints::l1_equal(g, &node_vars[n.id], &edge_vars[i], cfg.h_outgoing);
            }
        }
    }

    // ---- L2: incoming (Eq. 3) ----
    for n in &pfg.nodes {
        let ins = &in_edges[n.id];
        if ins.is_empty() {
            continue;
        }
        let edges: Vec<&SlotVars> = ins.iter().map(|&i| &edge_vars[i]).collect();
        // Merge-after-call: state flows from the callee's post edge.
        let post_edges: Vec<usize> = ins
            .iter()
            .enumerate()
            .filter(|(_, &ei)| {
                matches!(pfg.nodes[pfg.edges[ei].0].kind, PfgNodeKind::CallPost { .. })
            })
            .map(|(i, _)| i)
            .collect();
        if matches!(n.kind, PfgNodeKind::Merge) && post_edges.len() == 1 && ins.len() > 1 {
            constraints::l2_call_merge(g, &node_vars[n.id], &edges, post_edges[0], cfg.h_incoming);
        } else {
            constraints::l2_incoming(g, &node_vars[n.id], &edges, cfg.h_incoming);
        }
    }

    // ---- L3: field writes + H1 new + call-site bindings ----
    for n in &pfg.nodes {
        match &n.kind {
            PfgNodeKind::FieldWrite { .. } | PfgNodeKind::FieldRead { .. } => {
                if let Some(recv) = n.receiver_link {
                    if matches!(n.kind, PfgNodeKind::FieldWrite { .. }) {
                        constraints::l3_field_write(
                            g,
                            &node_vars[recv],
                            cfg.p_field_write_readonly,
                        );
                    }
                }
            }
            PfgNodeKind::New { .. } => {
                constraints::h_unique_result(g, &node_vars[n.id], cfg.p_constructor_unique);
            }
            PfgNodeKind::Refine { state } if cfg.branch_sensitive => {
                let space = n.type_name.as_deref().and_then(|t| ctx.states.get(t));
                let atom = spec_lang::PermAtom {
                    kind: PermissionKind::Pure, // kinds untouched below
                    target: SpecTarget::This,
                    state: Some(state.clone()),
                };
                // Only the state half of the Figure 8 priors: a
                // refinement says nothing about permission kinds.
                let st = atom.effective_state();
                for (name, v) in &node_vars[n.id].states {
                    let refines = match space {
                        Some(sp) => sp.refines(name, st),
                        None => name == st,
                    };
                    let p = if refines { cfg.p_spec_high } else { cfg.p_spec_low };
                    constraints::prior(g, *v, p);
                }
            }
            PfgNodeKind::CallPre { callee, role, .. }
            | PfgNodeKind::CallPost { callee, role, .. } => {
                let is_pre = matches!(n.kind, PfgNodeKind::CallPre { .. });
                apply_api_slot(g, &node_vars[n.id], ctx, callee, Some(*role), is_pre, cfg);
            }
            PfgNodeKind::CallResult { callee, .. } => {
                apply_api_slot(g, &node_vars[n.id], ctx, callee, None, false, cfg);
                // H3 at the call site: `create*` callees return unique.
                if callee_name(callee).starts_with("create") {
                    constraints::h_unique_result(g, &node_vars[n.id], cfg.p_create_unique);
                }
            }
            _ => {}
        }
    }

    // H4 at call sites: set* receivers are writers.
    for n in &pfg.nodes {
        if let PfgNodeKind::CallPre { callee, role: CallRole::Receiver, .. } = &n.kind {
            if callee_name(callee).starts_with("set") {
                constraints::h4_setter(g, &node_vars[n.id], cfg.p_setter_readonly);
            }
        }
    }

    // ---- H5: synchronized targets ----
    for &t in &pfg.sync_targets {
        constraints::h5_thread_shared(g, &node_vars[t], cfg.h_thread_shared);
    }

    // ---- Own-method heuristics and priors ----
    for p in &pfg.params {
        // H2: pre/post kinds agree.
        constraints::h2_pre_post(g, &node_vars[p.pre], &node_vars[p.post], cfg.h_pre_post);
        let target =
            if p.name == "this" { SpecTarget::This } else { SpecTarget::Param(p.name.clone()) };
        let space = ctx.states.get(&p.type_name);
        if let Some(atom) = own_spec.requires.for_target(&target) {
            install_atom_priors(g, &node_vars[p.pre], atom, space, cfg);
        }
        if let Some(atom) = own_spec.ensures.for_target(&target) {
            install_atom_priors(g, &node_vars[p.post], atom, space, cfg);
        }
        // H1 on constructors: the constructed object (this-post) is
        // unique with elevated probability.
        if is_constructor && p.name == "this" {
            constraints::h_unique_result(g, &node_vars[p.post], cfg.p_constructor_unique);
        }
    }
    if let Some((ty, result_post)) = &pfg.result {
        if let Some(atom) = own_spec.ensures.for_target(&SpecTarget::Result) {
            let space = ctx.states.get(ty);
            install_atom_priors(g, &node_vars[*result_post], atom, space, cfg);
        }
        // H3 on the method itself.
        if pfg.method.method.starts_with("create") {
            constraints::h_unique_result(g, &node_vars[*result_post], cfg.p_create_unique);
        }
    }
    // H4 on the method itself.
    if pfg.method.method.starts_with("set") {
        for p in &pfg.params {
            if p.name == "this" {
                constraints::h4_setter(g, &node_vars[p.pre], cfg.p_setter_readonly);
                constraints::h4_setter(g, &node_vars[p.post], cfg.p_setter_readonly);
            }
        }
    }

    // ---- Fault injection (`InferConfig::faults`; empty in normal runs) ----
    // NaN poisoning goes through a genuine factor table so the kernel's
    // numeric guards — not a shortcut — absorb it; oversize padding adds
    // real (unconstrained) variables so the model-size cap trips on the
    // actual graph.
    if cfg.faults.nan_factor(&pfg.method) {
        if let Some(slot) = node_vars.first() {
            let v = slot.kind(PermissionKind::ALL[0]);
            g.add_factor(Factor::from_raw_parts(vec![v], vec![f64::NAN, f64::NAN]));
        }
    }
    for i in 0..cfg.faults.oversize_extra(&pfg.method) {
        g.add_var(format!("{}:fault-pad{i}", pfg.method));
    }

    (node_vars, edge_vars)
}

/// The *dynamic* half of a method's model: unary priors derived from the
/// current program-callee summaries (`APPLYSUMMARY`, Figure 9 line 13) and
/// from caller-side evidence on this method's own pre/post/result nodes.
/// These are the only factors that change between worklist re-solves, so
/// they are returned as `(variable, clamped prior)` pairs that can either be
/// appended to a full [`MethodModel`] graph or stamped onto a compiled
/// [`MethodSkeleton`] — the two are equivalent bit-for-bit.
pub(crate) fn dynamic_priors(
    ctx: ModelCtx<'_>,
    pfg: &Pfg,
    node_vars: &[SlotVars],
    summaries: &BTreeMap<MethodId, MethodSummary>,
    caller_evidence: &[CallerEvidence],
) -> Vec<(VarId, f64)> {
    let mut out: Vec<(VarId, f64)> = Vec::new();
    // Program-callee summaries at call sites, in PFG node order (matching
    // the position the historical single-pass emitter visited them in).
    for n in &pfg.nodes {
        let (callee, role, is_pre) = match &n.kind {
            PfgNodeKind::CallPre { callee, role, .. } => (callee, Some(*role), true),
            PfgNodeKind::CallPost { callee, role, .. } => (callee, Some(*role), false),
            PfgNodeKind::CallResult { callee, .. } => (callee, None, false),
            _ => continue,
        };
        let Callee::Program(id) = callee else { continue };
        let Some(summary) = summaries.get(id) else { continue };
        let probs: Option<&SlotProbs> = match role {
            Some(CallRole::Receiver) => {
                summary.param("this").map(|(pre, post)| if is_pre { pre } else { post })
            }
            Some(CallRole::Arg(i)) => {
                // Positional parameter name lookup.
                let name =
                    ctx.index.method(id).and_then(|m| m.params.get(i)).map(|(nm, _)| nm.clone());
                name.and_then(|nm| {
                    summary.param(&nm).map(|(pre, post)| if is_pre { pre } else { post })
                })
            }
            None => summary.result.as_ref(),
        };
        if let Some(probs) = probs {
            collect_probs(&mut out, &node_vars[n.id], probs);
        }
    }
    // Caller evidence on own pre/post/result nodes.
    for ev in caller_evidence {
        for p in &pfg.params {
            if let Some(probs) = ev.param_pre.get(&p.name) {
                collect_probs(&mut out, &node_vars[p.pre], probs);
            }
            if let Some(probs) = ev.param_post.get(&p.name) {
                collect_probs(&mut out, &node_vars[p.post], probs);
            }
        }
        if let (Some(probs), Some((_, result_post))) = (&ev.result, &pfg.result) {
            collect_probs(&mut out, &node_vars[*result_post], probs);
        }
    }
    out
}

/// Collects a slot's marginals as unary evidence, skipping uninformative
/// near-0.5 entries and clamping like [`constraints::prior`].
fn collect_probs(out: &mut Vec<(VarId, f64)>, slot: &SlotVars, probs: &SlotProbs) {
    for k in PermissionKind::ALL {
        let p = probs.kind(k);
        if (p - 0.5).abs() > 1e-6 {
            out.push((slot.kind(k), p.clamp(0.02, 0.98)));
        }
    }
    for (name, v) in &slot.states {
        let p = probs.state(name);
        if (p - 0.5).abs() > 1e-6 {
            out.push((*v, p.clamp(0.02, 0.98)));
        }
    }
}

fn callee_name(callee: &Callee) -> &str {
    match callee {
        Callee::Program(id) => &id.method,
        Callee::Api { method, .. } => method,
        Callee::Unknown { method } => method,
    }
}

/// Installs Figure 8-style priors for one spec atom on a slot: the asserted
/// kind gets `p_spec_high`, all alternatives `p_spec_low`. State priors
/// respect the hierarchy: `in ALIVE` is the root and constrains nothing
/// ("not in any state of interest", Figure 2's note), while a non-root state
/// boosts every state refining it and suppresses the rest.
fn install_atom_priors(
    g: &mut FactorGraph,
    slot: &SlotVars,
    atom: &spec_lang::PermAtom,
    space: Option<&spec_lang::StateSpace>,
    cfg: &InferConfig,
) {
    install_atom_priors_inner(g, slot, atom, space, cfg, false);
}

/// When `lattice_aware` is set (call-site projections of API specs), the
/// `B(0.1)` anti-evidence is installed only on kinds too *weak* to satisfy
/// the asserted one: `hasNext()` asserting `pure(this)` describes the
/// permission lent on that edge, not a denial that the caller retains
/// something stronger, so `unique`/`full` stay unconstrained there — while
/// `next()` asserting `full(this)` genuinely rules out `pure`. Own-method
/// annotations use the paper's literal Figure 8 treatment.
fn install_atom_priors_inner(
    g: &mut FactorGraph,
    slot: &SlotVars,
    atom: &spec_lang::PermAtom,
    space: Option<&spec_lang::StateSpace>,
    cfg: &InferConfig,
    lattice_aware: bool,
) {
    for k in PermissionKind::ALL {
        if k == atom.kind {
            constraints::prior(g, slot.kind(k), cfg.p_spec_high);
        } else if !lattice_aware || !k.satisfies(atom.kind) {
            constraints::prior(g, slot.kind(k), cfg.p_spec_low);
        }
    }
    let state = atom.effective_state();
    for (name, v) in &slot.states {
        // Figure 8 literally: the asserted state (including the ALIVE root)
        // gets `B(0.9)`, and every other state — refining or not — gets
        // `B(0.1)`. Refinement tension (e.g. an iterator known to be in
        // HASNEXT passed to `hasNext()` which asks for ALIVE) is tolerated
        // by the softness of the model; the hard logical baseline instead
        // uses refinement-aware clauses because exactness would be UNSAT.
        let refines = match space {
            Some(sp) => sp.refines(name, state),
            None => name == state,
        };
        let p = if name == state || (refines && state != spec_lang::ALIVE) {
            cfg.p_spec_high
        } else {
            cfg.p_spec_low
        };
        constraints::prior(g, *v, p);
    }
}

/// The static half of the `PARAMARG(c)` binding for one call-site slot:
/// evidence from the callee's *API* specification. Program callees are
/// dynamic (their summaries evolve across the worklist) and handled by
/// [`dynamic_priors`]; unknown callees contribute nothing.
fn apply_api_slot(
    g: &mut FactorGraph,
    slot: &SlotVars,
    ctx: ModelCtx<'_>,
    callee: &Callee,
    role: Option<CallRole>,
    is_pre: bool,
    cfg: &InferConfig,
) {
    let Callee::Api { type_name, method } = callee else { return };
    let Some(api_m) = ctx.api.get(type_name, method) else { return };
    let target = match role {
        Some(CallRole::Receiver) => SpecTarget::This,
        Some(CallRole::Arg(_)) => return, // API arg specs unused in the model
        None => SpecTarget::Result,
    };
    let clause = if is_pre { &api_m.spec.requires } else { &api_m.spec.ensures };
    if let Some(atom) = clause.for_target(&target) {
        let space = ctx.states.get(type_name);
        install_atom_priors_inner(g, slot, atom, space, cfg, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::{spec_of_method, standard_api};

    fn build_model(src: &str, class: &str, method: &str) -> (MethodModel, MethodSummary) {
        let unit = parse(src).unwrap();
        let index = ProgramIndex::build([&unit]);
        let api = standard_api();
        let states = api.states.clone();
        let ctx = ModelCtx { index: &index, api: &api, states: &states };
        let cfg = InferConfig::default();
        let t = unit.type_named(class).unwrap();
        let m = t.method_named(method).unwrap();
        let pfg = Pfg::build(&index, &api, class, m);
        let spec = spec_of_method(m).unwrap();
        let model = MethodModel::build(ctx, pfg, &spec, m.is_constructor(), &BTreeMap::new(), &cfg);
        let summary = model.solve(ctx, &cfg);
        (model, summary)
    }

    #[test]
    fn iterator_loop_infers_full_receiver_permission() {
        // The copy pattern: iterator used correctly in a loop. The summary
        // for the iterator parameter should lean towards a writing
        // permission (full — next() requires it).
        let src = r#"
            class App {
                void drain(Iterator<Integer> it) {
                    while (it.hasNext()) { it.next(); }
                }
            }
        "#;
        let (_, summary) = build_model(src, "App", "drain");
        let (pre, _post) = summary.param("it").expect("it param");
        let p_full = pre.kind(PermissionKind::Full);
        let p_pure = pre.kind(PermissionKind::Pure);
        assert!(
            p_full > 0.5,
            "full should be likely for a nexted iterator: full={p_full:.3} pure={p_pure:.3}"
        );
    }

    #[test]
    fn unused_parameter_stays_uninformative() {
        // With the soft exactly-one factor, symmetric kinds settle around
        // 1/5 each; the important property is that nothing clears the
        // extraction threshold, so no spurious spec is emitted.
        let src = "class App { void noop(Row r) { } } class Row { }";
        let (_, summary) = build_model(src, "App", "noop");
        let (pre, _) = summary.param("r").unwrap();
        let cfg = InferConfig::default();
        assert_eq!(pre.extract_kind(cfg.threshold), None);
        for k in PermissionKind::ALL {
            assert!(
                pre.kind(k) < cfg.threshold,
                "{k} should stay below threshold, got {:.3}",
                pre.kind(k)
            );
        }
    }

    #[test]
    fn create_method_result_leans_unique() {
        let src = r#"
            class Row {
                Collection<Integer> entries;
                Iterator<Integer> createColIter() { return entries.iterator(); }
            }
        "#;
        let (_, summary) = build_model(src, "Row", "createColIter");
        let result = summary.result.as_ref().expect("returns Iterator");
        // H3 (create* ⇒ unique) plus the API's `unique(result)` on
        // Collection.iterator should push unique high.
        assert!(
            result.kind(PermissionKind::Unique) > 0.6,
            "unique={:.3}",
            result.kind(PermissionKind::Unique)
        );
    }

    #[test]
    fn own_annotation_priors_dominate() {
        // An empty body flows `this` straight from pre to post, so a
        // state-changing annotation would be contradicted by L1; use a
        // state-preserving one (the squeeze of contradictory annotations is
        // itself covered by the conflicting-evidence tests).
        let src = r#"
            class App {
                @Perm(requires = "full(this) in HASNEXT", ensures = "full(this) in HASNEXT")
                void step() { }
            }
        "#;
        let unit = parse(src).unwrap();
        let index = ProgramIndex::build([&unit]);
        let api = standard_api();
        // Give App the iterator-style state space so the state vars exist.
        let mut states = api.states.clone();
        states.insert(spec_lang::StateSpace::flat("App", ["HASNEXT", "END"]));
        let ctx = ModelCtx { index: &index, api: &api, states: &states };
        let cfg = InferConfig::default();
        let m = unit.type_named("App").unwrap().method_named("step").unwrap();
        let pfg = Pfg::build(&index, &api, "App", m);
        let spec = spec_of_method(m).unwrap();
        let model = MethodModel::build(ctx, pfg, &spec, false, &BTreeMap::new(), &cfg);
        let summary = model.solve(ctx, &cfg);
        let (pre, post) = summary.param("this").unwrap();
        assert!(pre.kind(PermissionKind::Full) > 0.7);
        assert!(pre.state("HASNEXT") > 0.7);
        assert!(post.state("HASNEXT") > 0.6);
        // Extraction reproduces the annotation.
        let extracted = summary.extract_spec(cfg.threshold);
        assert_eq!(extracted.requires.to_string(), "full(this) in HASNEXT");
    }

    #[test]
    fn summaries_propagate_at_call_sites() {
        let src = r#"
            class A { void callee(Stream s) { } }
            class B { void caller(A a, Stream s) { a.callee(s); } }
        "#;
        let unit = parse(src).unwrap();
        let index = ProgramIndex::build([&unit]);
        let api = standard_api();
        let states = api.states.clone();
        let ctx = ModelCtx { index: &index, api: &api, states: &states };
        let cfg = InferConfig::default();

        // Hand-craft a callee summary: s requires full in OPEN.
        let mut pre = SlotProbs::uniform(["ALIVE", "OPEN", "CLOSED"]);
        pre.set_kind(PermissionKind::Full, 0.9);
        pre.states.insert("OPEN".into(), 0.9);
        let callee_summary = MethodSummary {
            params: vec![
                ("this".into(), SlotProbs::uniform(["ALIVE"]), SlotProbs::uniform(["ALIVE"])),
                ("s".into(), pre.clone(), pre),
            ],
            result: None,
        };
        let mut summaries = BTreeMap::new();
        summaries.insert(MethodId::new("A", "callee"), callee_summary);

        let m = unit.type_named("B").unwrap().method_named("caller").unwrap();
        let pfg = Pfg::build(&index, &api, "B", m);
        let model = MethodModel::build(ctx, pfg, &MethodSpec::default(), false, &summaries, &cfg);
        let summary = model.solve(ctx, &cfg);
        let (s_pre, _) = summary.param("s").unwrap();
        assert!(
            s_pre.kind(PermissionKind::Full) > 0.55,
            "callee requirement should propagate to caller: {:.3}",
            s_pre.kind(PermissionKind::Full)
        );
        assert!(s_pre.state("OPEN") > 0.55, "OPEN state propagates: {:.3}", s_pre.state("OPEN"));
    }

    #[test]
    fn model_sizes_are_sane() {
        let src = r#"
            class App {
                void drain(Iterator<Integer> it) {
                    while (it.hasNext()) { it.next(); }
                }
            }
        "#;
        let (model, _) = build_model(src, "App", "drain");
        assert_eq!(model.node_vars.len(), model.pfg.nodes.len());
        assert_eq!(model.edge_vars.len(), model.pfg.edges.len());
        assert!(model.graph.num_factors() > model.pfg.nodes.len());
    }
}
