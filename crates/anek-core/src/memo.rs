//! Content-addressed memoization of per-method solves — the contract
//! between [`crate::infer::infer_with_store`] and a persistent summary
//! store (the `store` crate).
//!
//! ## Why memoizing single solves gives byte-identical incremental runs
//!
//! The worklist commits a deterministic sequence of per-method solves, and
//! each solve is a *pure function* of
//!
//! 1. the method's **static** inputs — its declaring unit's canonical
//!    source (which fixes the AST, the `ExprId` numbering, the PFG and the
//!    compiled skeleton), the program's *interface* (every signature,
//!    field, class annotation and `@Perm` spec any model may consult
//!    through the `ProgramIndex`), the API registry, the inference
//!    configuration, and any fault injected into this method; and
//! 2. its **dynamic** inputs — the current summaries of its program
//!    callees and its own caller-evidence store.
//!
//! Hashing exactly those inputs into a [`CacheKey`] therefore makes a
//! lookup sound: a hit replays the bit-identical [`SolvedRecord`] a fresh
//! solve would have produced. An incremental warm run *re-runs the whole
//! worklist schedule* — so its committed sequence, counters and final
//! tables are byte-identical to a cold run — but every solve outside the
//! edited source's transitive dirty cone hits the memo and costs a hash
//! lookup instead of a skeleton build plus message passing. Invalidation
//! needs no explicit dependency tracking; it falls out of the keys:
//!
//! * editing a method body changes its unit's fingerprint → its own solves
//!   miss;
//! * if its re-solved summary changes, its callers' dynamic inputs change →
//!   their solves miss, transitively (the dirty cone);
//! * editing any *signature*, field, class annotation or spec changes the
//!   interface fingerprint → every method conservatively misses;
//! * changing the configuration (or the store format) changes every key.
//!
//! The store is consulted only at commit time on the merge thread, so
//! hit/miss counters are deterministic for every `--threads` value.

use crate::config::InferConfig;
use crate::model::CallerEvidence;
use crate::summary::{MethodSummary, SlotProbs};
use analysis::pfg::Pfg;
use analysis::types::MethodId;
use factor_graph::GuardEvents;
use java_syntax::ast::CompilationUnit;
use java_syntax::ExprId;
use spec_lang::ApiRegistry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Version of the key-derivation scheme. Bumped whenever the hashed input
/// set, the hash function, or the meaning of any hashed field changes —
/// stale stores then miss cleanly instead of replaying records produced
/// under different semantics.
pub const KEY_SCHEME_VERSION: u32 = 2;

/// A 128-bit content hash addressing one cached artifact.
pub type CacheKey = u128;

/// An incremental FNV-1a hasher widened to 128 bits by running two
/// independent 64-bit streams with distinct offset bases. Hand-rolled so
/// keys are stable across platforms, builds and processes (unlike
/// `DefaultHasher`, whose algorithm is unspecified).
#[derive(Debug, Clone)]
pub struct KeyHasher {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// Second stream: the standard offset basis XOR an arbitrary odd constant,
/// so the two streams never agree.
const FNV_OFFSET_B: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;

impl Default for KeyHasher {
    fn default() -> KeyHasher {
        KeyHasher::new()
    }
}

impl KeyHasher {
    /// A fresh hasher.
    pub fn new() -> KeyHasher {
        KeyHasher { a: FNV_OFFSET_A, b: FNV_OFFSET_B }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a length-prefixed string (prefixing prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Feeds a `u64` in little-endian order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write(&[u8::from(v)]);
    }

    /// Feeds an `f64` by exact bit pattern — two summaries hash equal iff
    /// they are bit-identical, which is precisely the determinism contract.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The accumulated 128-bit key.
    pub fn finish(&self) -> CacheKey {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Hashes a whole byte slice in one call.
pub fn hash_bytes(bytes: &[u8]) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write(bytes);
    h.finish()
}

/// Fingerprint of every [`InferConfig`] field that can influence a solve's
/// *result*, excluding `threads` (any value is byte-identical by the
/// worklist's determinism contract, so the cache is shared across thread
/// counts) and `faults` (injected faults are per-method and folded into
/// each method's static key by [`method_fault_token`]).
pub fn config_fingerprint(cfg: &InferConfig) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_u32(KEY_SCHEME_VERSION);
    for v in [
        cfg.h_outgoing,
        cfg.h_split,
        cfg.h_incoming,
        cfg.p_field_write_readonly,
        cfg.p_constructor_unique,
        cfg.h_pre_post,
        cfg.p_create_unique,
        cfg.p_setter_readonly,
        cfg.h_thread_shared,
        cfg.h_exactly_one,
        cfg.p_spec_high,
        cfg.p_spec_low,
        cfg.threshold,
        cfg.summary_epsilon,
    ] {
        h.write_f64(v);
    }
    h.write_u64(cfg.max_iters as u64);
    h.write_bool(cfg.branch_sensitive);
    h.write_u64(cfg.max_model_vars as u64);
    h.write_bool(cfg.degraded_fallback);
    h.write_bool(cfg.screen);
    h.write_u64(cfg.bp.max_iterations as u64);
    h.write_f64(cfg.bp.tolerance);
    h.write_f64(cfg.bp.damping);
    h.write_str(&format!("{:?}", cfg.bp.schedule));
    h.write_str(&format!("{:?}", cfg.bp.precision));
    match cfg.bp.update_budget {
        Some(b) => {
            h.write_bool(true);
            h.write_u64(b as u64);
        }
        None => h.write_bool(false),
    }
    h.finish()
}

/// Fingerprint of one unit's canonical (pretty-printed) source. The
/// canonical text fixes the parse — including the deterministic `ExprId`
/// numbering every PFG call site and evidence key refers to — so two units
/// with equal fingerprints yield bit-identical analysis inputs.
pub fn unit_fingerprint(unit: &CompilationUnit) -> CacheKey {
    hash_bytes(java_syntax::print_unit(unit).as_bytes())
}

/// Fingerprint of the program's *interface*: every unit printed with all
/// method bodies stripped (signatures, fields, class/method annotations and
/// `@States` declarations survive), plus the API registry. This is the
/// conservative closure of everything a method's model may read from
/// *other* classes through the `ProgramIndex`/`TypeEnv`; editing only a
/// method body leaves it unchanged.
pub fn interface_fingerprint(units: &[CompilationUnit], api: &ApiRegistry) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_u32(KEY_SCHEME_VERSION);
    for unit in units {
        let mut stripped = unit.clone();
        for t in &mut stripped.types {
            for member in &mut t.members {
                if let java_syntax::ast::Member::Method(m) = member {
                    m.body = None;
                }
            }
        }
        h.write_str(&java_syntax::print_unit(&stripped));
    }
    // The API registry is static per process configuration; its debug
    // rendering is a stable serialization of the annotated library model.
    h.write_str(&format!("{api:?}"));
    h.finish()
}

/// The per-method fault token: which injected faults target this method.
/// Folding it into the static key means injecting a fault invalidates (and
/// on failure, re-misses) exactly the targeted method's cache entries — the
/// rest of the store stays warm.
pub fn method_fault_token(cfg: &InferConfig, id: &MethodId) -> u64 {
    let mut token = 0u64;
    if cfg.faults.should_panic(id) {
        token |= 1;
    }
    if cfg.faults.nan_factor(id) {
        token |= 2;
    }
    token | (cfg.faults.oversize_extra(id) as u64) << 2
}

fn write_slot(h: &mut KeyHasher, slot: &SlotProbs) {
    for k in slot.kinds {
        h.write_f64(k);
    }
    h.write_u64(slot.states.len() as u64);
    for (name, p) in &slot.states {
        h.write_str(name);
        h.write_f64(*p);
    }
}

/// Feeds a summary's exact bit content into a hasher.
pub fn write_summary(h: &mut KeyHasher, summary: &MethodSummary) {
    h.write_u64(summary.params.len() as u64);
    for (name, pre, post) in &summary.params {
        h.write_str(name);
        write_slot(h, pre);
        write_slot(h, post);
    }
    match &summary.result {
        Some(slot) => {
            h.write_bool(true);
            write_slot(h, slot);
        }
        None => h.write_bool(false),
    }
}

/// Feeds one caller-evidence snapshot into a hasher.
pub fn write_evidence(h: &mut KeyHasher, ev: &CallerEvidence) {
    for map in [&ev.param_pre, &ev.param_post] {
        h.write_u64(map.len() as u64);
        for (name, slot) in map {
            h.write_str(name);
            write_slot(h, slot);
        }
    }
    match &ev.result {
        Some(slot) => {
            h.write_bool(true);
            write_slot(h, slot);
        }
        None => h.write_bool(false),
    }
}

/// What one committed model solve produced: the method's refreshed
/// summary, the call-site evidence it observed about each callee, and the
/// BP health/work counters. This is the unit of memoization — bit-exact,
/// so replaying a record is indistinguishable from re-running the solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolvedRecord {
    /// The method's new probabilistic summary.
    pub summary: MethodSummary,
    /// Observed marginals per callee per call site.
    pub call_evidence: BTreeMap<MethodId, BTreeMap<ExprId, CallerEvidence>>,
    /// BP sweeps (or sweep-equivalents) the solve performed.
    pub iterations: usize,
    /// BP message updates the solve performed.
    pub updates: usize,
    /// Whether BP reached the convergence tolerance.
    pub converged: bool,
    /// Numeric-guard clamp counts.
    pub guards: GuardEvents,
}

/// A cache the worklist can consult for per-method solve results and
/// per-method PFGs. Implemented by `store::Store`; `infer` only ever sees
/// this trait, so `anek-core` stays free of any persistence concern.
///
/// Lookups may run concurrently from worker threads; insertions happen only
/// on the single merge thread.
pub trait InferCache: Sync {
    /// Returns the record cached under `key`, if present and intact.
    fn solve_lookup(&self, key: CacheKey) -> Option<SolvedRecord>;
    /// Caches a freshly committed solve.
    fn solve_insert(&self, key: CacheKey, record: &SolvedRecord);
    /// Returns the PFG cached under `key`, if present and intact.
    fn pfg_lookup(&self, key: CacheKey) -> Option<Arc<Pfg>>;
    /// Caches a freshly built PFG.
    fn pfg_insert(&self, key: CacheKey, pfg: &Arc<Pfg>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::standard_api;

    #[test]
    fn hasher_is_order_and_length_sensitive() {
        let mut a = KeyHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = KeyHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefixes disambiguate");
        assert_ne!(hash_bytes(b"x"), hash_bytes(b"y"));
        assert_eq!(hash_bytes(b"x"), hash_bytes(b"x"));
    }

    #[test]
    fn config_fingerprint_ignores_threads_and_faults() {
        let base = InferConfig::default();
        let mut threaded = base.clone();
        threaded.threads = 8;
        let mut faulted = base.clone();
        faulted.faults.panic_methods.push("App.copy".into());
        assert_eq!(config_fingerprint(&base), config_fingerprint(&threaded));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&faulted));
        let mut tuned = base.clone();
        tuned.threshold = 0.7;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&tuned));
        let mut budgeted = base;
        budgeted.bp.update_budget = Some(100);
        assert_ne!(config_fingerprint(&budgeted), config_fingerprint(&InferConfig::default()));
    }

    #[test]
    fn unit_fingerprint_tracks_body_edits_interface_does_not() {
        let api = standard_api();
        let v1 = parse("class A { void m() { int x = 0; } void n() { } }").unwrap();
        let v2 = parse("class A { void m() { int x = 1; } void n() { } }").unwrap();
        assert_ne!(unit_fingerprint(&v1), unit_fingerprint(&v2));
        assert_eq!(
            interface_fingerprint(std::slice::from_ref(&v1), &api),
            interface_fingerprint(&[v2], &api),
            "body-only edits keep the interface fingerprint"
        );
        let v3 = parse("class A { void m(int p) { int x = 0; } void n() { } }").unwrap();
        assert_ne!(
            interface_fingerprint(&[v1], &api),
            interface_fingerprint(&[v3], &api),
            "signature edits change the interface fingerprint"
        );
    }

    #[test]
    fn fault_tokens_are_method_local() {
        let mut cfg = InferConfig::default();
        cfg.faults.panic_methods.push("App.copy".into());
        cfg.faults.oversize_methods.push(("App.big".into(), 5));
        assert_eq!(method_fault_token(&cfg, &MethodId::new("App", "copy")), 1);
        assert_eq!(method_fault_token(&cfg, &MethodId::new("App", "big")), 5 << 2);
        assert_eq!(method_fault_token(&cfg, &MethodId::new("App", "other")), 0);
    }
}
