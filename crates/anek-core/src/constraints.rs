//! The probabilistic constraint emitters (paper §3.3).
//!
//! Logical constraints **L1** (outgoing permissions, including sound
//! splitting), **L2** (incoming permissions) and **L3** (field writes need a
//! writing receiver) encode the basic algebra of access permissions;
//! heuristic constraints **H1–H5** encode what makes a *good* PLURAL
//! specification. Every constraint is soft — potential `h` when satisfied,
//! `1-h` otherwise (Eq. 6) — which is precisely what lets ANEK produce
//! specifications for buggy programs.

use factor_graph::{Factor, FactorGraph, VarId};
use spec_lang::PermissionKind;

/// The variables modelling one PFG node or edge: five kind variables plus
/// one variable per abstract state of the slot's type.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotVars {
    /// Kind variables, indexed per [`PermissionKind::ALL`].
    pub kinds: [VarId; 5],
    /// State variables.
    pub states: Vec<(String, VarId)>,
}

impl SlotVars {
    /// Allocates fresh variables in `g` for a slot.
    pub fn alloc(g: &mut FactorGraph, label: &str, states: &[String]) -> SlotVars {
        let kinds = PermissionKind::ALL.map(|k| g.add_var(format!("{label}:{k}")));
        let states =
            states.iter().map(|s| (s.clone(), g.add_var(format!("{label}:{s}")))).collect();
        SlotVars { kinds, states }
    }

    /// The variable for a kind.
    pub fn kind(&self, k: PermissionKind) -> VarId {
        let idx = PermissionKind::ALL.iter().position(|x| *x == k).expect("indexed");
        self.kinds[idx]
    }

    /// The variable for a state, if the slot's type has it.
    pub fn state(&self, s: &str) -> Option<VarId> {
        self.states.iter().find(|(n, _)| n == s).map(|(_, v)| *v)
    }

    /// All variables paired by position with another slot (kinds, then the
    /// states both slots share).
    fn paired<'a>(&'a self, other: &'a SlotVars) -> impl Iterator<Item = (VarId, VarId)> + 'a {
        let kinds = self.kinds.iter().copied().zip(other.kinds.iter().copied());
        let states =
            self.states.iter().filter_map(move |(name, v)| other.state(name).map(|o| (*v, o)));
        kinds.chain(states)
    }
}

/// Soft mutual exclusion: exactly one kind variable and exactly one state
/// variable should hold per slot. (Figure 8's priors treat kinds/states as
/// near-exclusive; this factor makes the modelling assumption explicit.)
pub fn exactly_one(g: &mut FactorGraph, slot: &SlotVars, h: f64) {
    let kind_vars: Vec<VarId> = slot.kinds.to_vec();
    g.add_factor(Factor::soft(kind_vars, h, |a| a.iter().filter(|b| **b).count() == 1));
    if slot.states.len() > 1 {
        let state_vars: Vec<VarId> = slot.states.iter().map(|(_, v)| *v).collect();
        g.add_factor(Factor::soft(state_vars, h, |a| a.iter().filter(|b| **b).count() == 1));
    } else if let Some((_, v)) = slot.states.first() {
        // Single-state (ALIVE-only) types are simply alive.
        g.add_factor(Factor::unary(*v, 0.95));
    }
}

/// L1, branch form (Eq. 1): the node and an outgoing edge carry the same
/// permission and state, with high probability `h1`, variable by variable.
pub fn l1_equal(g: &mut FactorGraph, node: &SlotVars, edge: &SlotVars, h: f64) {
    for (a, b) in node.paired(edge) {
        g.add_factor(Factor::soft(vec![a, b], h, |v| v[0] == v[1]));
    }
}

/// L1, split form (Eq. 2): each outgoing edge must be a legal weakening of
/// the node's kind; states pass through unchanged; and at most one edge may
/// carry an exclusive-writer permission.
pub fn l1_split(g: &mut FactorGraph, node: &SlotVars, edges: &[&SlotVars], h: f64) {
    // Per-edge legal weakening: couple the node's 5 kind vars with the
    // edge's 5 kind vars (scope 10 → 1024-entry table).
    for edge in edges {
        let mut scope: Vec<VarId> = node.kinds.to_vec();
        scope.extend(edge.kinds.iter().copied());
        g.add_factor(Factor::soft(scope, h, |a| {
            // a[0..5] = node kinds, a[5..10] = edge kinds.
            for (i, nk) in PermissionKind::ALL.iter().enumerate() {
                if !a[i] {
                    continue;
                }
                let edge_ok = PermissionKind::ALL
                    .iter()
                    .enumerate()
                    .any(|(j, ek)| a[5 + j] && (nk.can_weaken_to(*ek) || nk == ek));
                if !edge_ok && a[5..10].iter().any(|b| *b) {
                    return false;
                }
            }
            true
        }));
        // States flow through the split unchanged.
        for (name, v) in &node.states {
            if let Some(ev) = edge.state(name) {
                g.add_factor(Factor::soft(vec![*v, ev], h, |a| a[0] == a[1]));
            }
        }
    }
    // Exclusivity: no two edges may both carry unique/full (Eq. 2's last
    // conjunct: `X^e_unique → ¬(X^e2_unique ∨ X^e2_full)`).
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            let scope = vec![
                edges[i].kind(PermissionKind::Unique),
                edges[i].kind(PermissionKind::Full),
                edges[j].kind(PermissionKind::Unique),
                edges[j].kind(PermissionKind::Full),
            ];
            g.add_factor(Factor::soft(scope, h, |a| {
                let writer_i = a[0] || a[1];
                let writer_j = a[2] || a[3];
                !(writer_i && writer_j)
            }));
        }
    }
}

/// L2 (Eq. 3): a node's permission equals *one of* its incoming edges',
/// with high probability.
///
/// The disjunction-of-equalities form matters at merge-after-call nodes: the
/// caller's retained (e.g. `full`) permission and the callee's returned
/// (e.g. `pure`) permission both flow in, and the node may adopt either —
/// a per-variable OR would wrongly force the node to be `pure` whenever any
/// incoming edge is. Kinds and states choose their edge independently, which
/// models PLURAL's merge semantics (kind from the strongest holder, state
/// from the callee's postcondition).
pub fn l2_incoming(g: &mut FactorGraph, node: &SlotVars, edges: &[&SlotVars], h: f64) {
    if edges.is_empty() {
        return;
    }
    if edges.len() == 1 {
        l1_equal(g, node, edges[0], h);
        return;
    }
    l2_kinds_one_of(g, node, edges, h);
    l2_states_one_of(g, node, edges, h);
}

/// L2 for the merge node after a call site (Figure 6): the *kind* may come
/// from any incoming edge (typically the caller's retained permission), but
/// the *state* comes from the callee's postcondition edge — the callee may
/// have transitioned the object, so retained state knowledge is stale.
pub fn l2_call_merge(
    g: &mut FactorGraph,
    node: &SlotVars,
    edges: &[&SlotVars],
    post_edge: usize,
    h: f64,
) {
    l2_kinds_one_of(g, node, edges, h);
    // States: equality with the callee's post edge only.
    for (name, v) in &node.states {
        if let Some(ev) = edges[post_edge].state(name) {
            g.add_factor(Factor::soft(vec![*v, ev], h, |a| a[0] == a[1]));
        }
    }
}

/// Kinds-half of L2: the node's kind vector equals one incoming edge's,
/// with a boolean selector per edge (exactly one holds) and scope-3
/// implication factors.
fn l2_kinds_one_of(
    g: &mut FactorGraph,
    node: &SlotVars,
    edges: &[&SlotVars],
    h: f64,
) -> Vec<VarId> {
    let kind_sel = add_selectors(g, edges.len(), h, "selK");
    for (i, e) in edges.iter().enumerate() {
        for (nv, ev) in node.kinds.iter().zip(e.kinds.iter()) {
            g.add_factor(Factor::soft(vec![kind_sel[i], *nv, *ev], h, |a| !a[0] || a[1] == a[2]));
        }
    }
    kind_sel
}

/// States-half of L2 with an independent selector.
fn l2_states_one_of(g: &mut FactorGraph, node: &SlotVars, edges: &[&SlotVars], h: f64) {
    let shared: Vec<String> = node
        .states
        .iter()
        .map(|(n, _)| n.clone())
        .filter(|n| edges.iter().all(|e| e.state(n).is_some()))
        .collect();
    if shared.is_empty() {
        return;
    }
    let state_sel = add_selectors(g, edges.len(), h, "selS");
    for (i, e) in edges.iter().enumerate() {
        for name in &shared {
            let nv = node.state(name).expect("shared state");
            let ev = e.state(name).expect("shared state");
            g.add_factor(Factor::soft(vec![state_sel[i], nv, ev], h, |a| !a[0] || a[1] == a[2]));
        }
    }
}

/// Allocates `m` selector variables with a soft exactly-one factor.
fn add_selectors(g: &mut FactorGraph, m: usize, h: f64, tag: &str) -> Vec<VarId> {
    let base = g.num_vars();
    let sels: Vec<VarId> = (0..m).map(|i| g.add_var(format!("{tag}{base}_{i}"))).collect();
    if m > 1 {
        g.add_factor(Factor::soft(sels.clone(), h, |a| a.iter().filter(|b| **b).count() == 1));
    } else if let Some(&s) = sels.first() {
        g.add_factor(Factor::unary(s, 0.95));
    }
    sels
}

/// L3: the receiver of a field write cannot be read-only — `immutable` and
/// `pure` get a very low probability, and some writing kind must hold.
pub fn l3_field_write(g: &mut FactorGraph, receiver: &SlotVars, p_readonly: f64) {
    g.add_factor(Factor::unary(receiver.kind(PermissionKind::Immutable), p_readonly));
    g.add_factor(Factor::unary(receiver.kind(PermissionKind::Pure), p_readonly));
    let writers = vec![
        receiver.kind(PermissionKind::Unique),
        receiver.kind(PermissionKind::Full),
        receiver.kind(PermissionKind::Share),
    ];
    g.add_factor(Factor::soft(writers, 1.0 - p_readonly, |a| a.iter().any(|b| *b)));
    // Break the symmetry among the writers: `full` is the idiomatic PLURAL
    // spec for a writing receiver (exclusive writer, readers tolerated).
    g.add_factor(Factor::unary(receiver.kind(PermissionKind::Full), 0.65));
}

/// H1 / H3: elevated probability of `unique` on a constructor result or a
/// `create*` method's return value.
pub fn h_unique_result(g: &mut FactorGraph, slot: &SlotVars, p_unique: f64) {
    g.add_factor(Factor::unary(slot.kind(PermissionKind::Unique), p_unique));
}

/// H2: a parameter's pre and post *kinds* (not states) agree with high
/// probability.
pub fn h2_pre_post(g: &mut FactorGraph, pre: &SlotVars, post: &SlotVars, h: f64) {
    for (a, b) in pre.kinds.iter().zip(post.kinds.iter()) {
        g.add_factor(Factor::soft(vec![*a, *b], h, |v| v[0] == v[1]));
    }
}

/// H4: `set*` receivers are unlikely to be read-only kinds.
pub fn h4_setter(g: &mut FactorGraph, receiver: &SlotVars, p_readonly: f64) {
    g.add_factor(Factor::unary(receiver.kind(PermissionKind::Immutable), p_readonly));
    g.add_factor(Factor::unary(receiver.kind(PermissionKind::Pure), p_readonly));
}

/// H5: targets of `synchronized` blocks are `full`, `share` or `pure` with
/// high probability.
pub fn h5_thread_shared(g: &mut FactorGraph, target: &SlotVars, h: f64) {
    let scope = vec![
        target.kind(PermissionKind::Full),
        target.kind(PermissionKind::Share),
        target.kind(PermissionKind::Pure),
    ];
    g.add_factor(Factor::soft(scope, h, |a| a.iter().any(|b| *b)));
}

/// Installs priors from a known probability (clamped away from 0/1 so that
/// conflicting evidence can still coexist — the heart of the approach).
pub fn prior(g: &mut FactorGraph, var: VarId, p: f64) {
    g.add_factor(Factor::unary(var, p.clamp(0.02, 0.98)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use factor_graph::BpOptions;

    fn alloc(g: &mut FactorGraph, label: &str) -> SlotVars {
        SlotVars::alloc(g, label, &["ALIVE".to_string(), "HASNEXT".to_string(), "END".to_string()])
    }

    #[test]
    fn slot_alloc_creates_eight_vars() {
        let mut g = FactorGraph::new();
        let s = alloc(&mut g, "n0");
        assert_eq!(g.num_vars(), 8);
        assert!(s.state("HASNEXT").is_some());
        assert!(s.state("OPEN").is_none());
        assert_eq!(g.var_name(s.kind(PermissionKind::Unique)), "n0:unique");
    }

    #[test]
    fn l1_equal_propagates_evidence() {
        let mut g = FactorGraph::new();
        let n = alloc(&mut g, "n");
        let e = alloc(&mut g, "e");
        prior(&mut g, n.kind(PermissionKind::Full), 0.95);
        l1_equal(&mut g, &n, &e, 0.9);
        let m = g.solve(&BpOptions::default());
        assert!(m.prob(e.kind(PermissionKind::Full)) > 0.7);
    }

    #[test]
    fn l1_split_permits_full_plus_pure_from_unique() {
        let mut g = FactorGraph::new();
        let n = alloc(&mut g, "n");
        let e1 = alloc(&mut g, "e1");
        let e2 = alloc(&mut g, "e2");
        prior(&mut g, n.kind(PermissionKind::Unique), 0.95);
        // Evidence that e1 must be full (a callee needs it).
        prior(&mut g, e1.kind(PermissionKind::Full), 0.95);
        l1_split(&mut g, &n, &[&e1, &e2], 0.9);
        for s in [&n, &e1, &e2] {
            exactly_one(&mut g, s, 0.9);
        }
        let m = g.solve(&BpOptions { max_iterations: 100, ..BpOptions::default() });
        // e2 must not also be an exclusive writer.
        let p_e2_writer =
            m.prob(e2.kind(PermissionKind::Unique)).max(m.prob(e2.kind(PermissionKind::Full)));
        assert!(p_e2_writer < 0.5, "retained edge must not be a second writer: {p_e2_writer}");
    }

    #[test]
    fn l1_split_states_flow_through() {
        let mut g = FactorGraph::new();
        let n = alloc(&mut g, "n");
        let e = alloc(&mut g, "e");
        prior(&mut g, n.state("HASNEXT").unwrap(), 0.95);
        l1_split(&mut g, &n, &[&e], 0.9);
        let m = g.solve(&BpOptions::default());
        assert!(m.prob(e.state("HASNEXT").unwrap()) > 0.7);
    }

    #[test]
    fn l2_or_equality_merges_incoming() {
        let mut g = FactorGraph::new();
        let n = alloc(&mut g, "n");
        let a = alloc(&mut g, "a");
        let b = alloc(&mut g, "b");
        prior(&mut g, a.kind(PermissionKind::Share), 0.9);
        prior(&mut g, b.kind(PermissionKind::Share), 0.9);
        l2_incoming(&mut g, &n, &[&a, &b], 0.9);
        let m = g.solve(&BpOptions::default());
        // Selector-based L2 dilutes single-hop evidence (the selector is
        // itself uncertain); the node must still clearly lean share.
        assert!(m.prob(n.kind(PermissionKind::Share)) > 0.6);
        assert!(m.prob(n.kind(PermissionKind::Share)) > m.prob(n.kind(PermissionKind::Unique)));
    }

    #[test]
    fn l3_pushes_receiver_to_writer() {
        let mut g = FactorGraph::new();
        let r = alloc(&mut g, "recv");
        l3_field_write(&mut g, &r, 0.05);
        exactly_one(&mut g, &r, 0.9);
        let m = g.solve(&BpOptions::default());
        assert!(m.prob(r.kind(PermissionKind::Pure)) < 0.2);
        assert!(m.prob(r.kind(PermissionKind::Immutable)) < 0.2);
        let p_writer = m
            .prob(r.kind(PermissionKind::Unique))
            .max(m.prob(r.kind(PermissionKind::Full)))
            .max(m.prob(r.kind(PermissionKind::Share)));
        assert!(p_writer > 0.4);
    }

    #[test]
    fn h5_disfavors_unique() {
        let mut g = FactorGraph::new();
        let t = alloc(&mut g, "lock");
        h5_thread_shared(&mut g, &t, 0.9);
        exactly_one(&mut g, &t, 0.9);
        let m = g.solve(&BpOptions::default());
        let p_shared = m.prob(t.kind(PermissionKind::Full))
            + m.prob(t.kind(PermissionKind::Share))
            + m.prob(t.kind(PermissionKind::Pure));
        assert!(p_shared > m.prob(t.kind(PermissionKind::Unique)));
    }

    #[test]
    fn prior_clamps_extremes() {
        let mut g = FactorGraph::new();
        let s = alloc(&mut g, "x");
        prior(&mut g, s.kind(PermissionKind::Unique), 1.0);
        prior(&mut g, s.kind(PermissionKind::Pure), 0.0);
        let m = g.solve(&BpOptions::default());
        assert!(m.prob(s.kind(PermissionKind::Unique)) < 1.0);
        assert!(m.prob(s.kind(PermissionKind::Pure)) > 0.0);
    }
}
