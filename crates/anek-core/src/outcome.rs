//! Per-method solve outcomes: the structured error/degradation vocabulary
//! of the fault-isolated worklist.
//!
//! The paper's pitch is that probabilistic inference *keeps producing
//! usable specs where the logical mode gives up* — so the implementation
//! must degrade per method, never per program. Every method's final state
//! after [`crate::infer`] is classified into the three-level lattice
//!
//! ```text
//!   Ok  <  Degraded { reasons }  <  Failed { error }
//! ```
//!
//! `Ok` means the last solve converged cleanly and nothing numeric was
//! clamped. `Degraded` means a spec was still extracted, but from marginals
//! that should not be fully trusted (the reasons say why). `Failed` means
//! no solve of the method ever completed; its published summary is frozen
//! at the last committed value (the INIT prior summary if the very first
//! solve failed), which is exactly the paper's uniform-`h` fallback — soft
//! constraints still give an answer.
//!
//! Outcomes render into a deterministic text table ([`render_outcome_table`])
//! that the CLI prints and the CI fault gate byte-diffs across `--threads`
//! values.

use analysis::types::MethodId;
use std::collections::BTreeMap;
use std::fmt;

/// Why a method's extracted spec is usable but not fully trusted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeReason {
    /// The final solve hit the iteration cap (or the update budget) before
    /// reaching the convergence tolerance.
    BpNonConverged {
        /// Sweeps (or sweep-equivalents) the final solve performed.
        iterations: usize,
    },
    /// The kernel clamped degenerate normalizations during the final solve
    /// (non-finite or zero-sum message mass).
    NumericClamped {
        /// Normalizations with NaN/infinite mass.
        non_finite: usize,
        /// Normalizations with zero mass.
        zero_sum: usize,
    },
    /// The worklist stopped (MaxIters) while this method was still queued
    /// for re-analysis: its published summary may be stale with respect to
    /// the last summaries/evidence its inputs produced.
    WorklistTruncated,
    /// The spec was extracted from the INIT prior-marginal summary instead
    /// of the non-converged solve's marginals
    /// (see `InferConfig::degraded_fallback`).
    PriorFallback,
    /// The solve's wall-clock deadline (`BpOptions::deadline`, set by a
    /// server request's `deadline_ms`) expired before convergence, or the
    /// worklist stopped scheduling because the deadline had passed. The
    /// spec comes from whatever marginals were produced in time; the result
    /// is never cached (deadline truncation is timing-dependent).
    DeadlineExpired,
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::BpNonConverged { iterations } => {
                write!(f, "bp-nonconverged(iters={iterations})")
            }
            DegradeReason::NumericClamped { non_finite, zero_sum } => {
                write!(f, "numeric-clamped(non-finite={non_finite},zero-sum={zero_sum})")
            }
            DegradeReason::WorklistTruncated => write!(f, "worklist-truncated"),
            DegradeReason::PriorFallback => write!(f, "prior-fallback"),
            DegradeReason::DeadlineExpired => write!(f, "deadline-expired"),
        }
    }
}

/// Why no solve of a method ever completed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum InferError {
    /// A solve (skeleton build, stamping, message passing or read-out)
    /// panicked. The panic was caught at the per-method boundary; the
    /// message is the panic payload.
    SolvePanicked {
        /// The panic payload, rendered to text.
        message: String,
    },
    /// The method's factor graph exceeded `InferConfig::max_model_vars`
    /// and was refused before solving.
    ModelTooLarge {
        /// Variables the model would have had.
        vars: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::SolvePanicked { message } => write!(f, "solve panicked: {message}"),
            InferError::ModelTooLarge { vars, limit } => {
                write!(f, "model too large: {vars} vars exceeds cap {limit}")
            }
        }
    }
}

/// The final classification of one method after inference.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodOutcome {
    /// The last solve converged with no numeric clamps; the spec is as
    /// trustworthy as the model.
    Ok {
        /// Sweeps the final solve took to converge.
        iterations: usize,
    },
    /// A spec was extracted, but under one or more degradations.
    Degraded {
        /// Every degradation observed, sorted and deduplicated.
        reasons: Vec<DegradeReason>,
    },
    /// No solve completed; the published summary is the last committed one
    /// (the INIT prior if the first solve already failed).
    Failed {
        /// What went wrong.
        error: InferError,
    },
    /// Skipped by the bit-vector screening pre-pass (`--screen`): the
    /// method was proven protocol-conformant and is isolated in the call
    /// graph, so no model was built and no solve ran.
    Screened,
}

impl MethodOutcome {
    /// Whether this outcome is `Ok`.
    pub fn is_ok(&self) -> bool {
        matches!(self, MethodOutcome::Ok { .. })
    }

    /// Whether this outcome is `Degraded`.
    pub fn is_degraded(&self) -> bool {
        matches!(self, MethodOutcome::Degraded { .. })
    }

    /// Whether this outcome is `Failed`.
    pub fn is_failed(&self) -> bool {
        matches!(self, MethodOutcome::Failed { .. })
    }

    /// Whether this outcome is `Screened`.
    pub fn is_screened(&self) -> bool {
        matches!(self, MethodOutcome::Screened)
    }

    /// The status column of the outcome table.
    pub fn status(&self) -> &'static str {
        match self {
            MethodOutcome::Ok { .. } => "ok",
            MethodOutcome::Degraded { .. } => "degraded",
            MethodOutcome::Failed { .. } => "failed",
            MethodOutcome::Screened => "screened",
        }
    }

    /// The detail column of the outcome table. Deterministic: never
    /// includes timing or addresses.
    pub fn detail(&self) -> String {
        match self {
            MethodOutcome::Ok { iterations } => format!("converged in {iterations} iters"),
            MethodOutcome::Degraded { reasons } => {
                reasons.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
            }
            MethodOutcome::Failed { error } => error.to_string(),
            MethodOutcome::Screened => "provably clean (bitstate pre-pass)".to_string(),
        }
    }
}

impl fmt::Display for MethodOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\t{}", self.status(), self.detail())
    }
}

/// Renders the per-method outcome table: one `method<TAB>status<TAB>detail`
/// line per method in `BTreeMap` (i.e. deterministic) order.
///
/// The CLI prints this on stdout and the CI fault-injection gate byte-diffs
/// it across `--threads 1` and `--threads 4`, so nothing non-deterministic
/// (timing, thread ids, pointer values) may ever appear here.
pub fn render_outcome_table(outcomes: &BTreeMap<MethodId, MethodOutcome>) -> String {
    let mut out = String::new();
    for (id, outcome) in outcomes {
        out.push_str(&format!("{id}\t{outcome}\n"));
    }
    out
}

/// Extracts a readable message from a caught panic payload.
///
/// `std::panic::catch_unwind` yields a `Box<dyn Any>`; panics raised via
/// `panic!` carry a `&str` or `String`, anything else is rendered
/// generically (deterministically — no addresses).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_and_detail_render() {
        let ok = MethodOutcome::Ok { iterations: 7 };
        assert_eq!(ok.status(), "ok");
        assert!(ok.detail().contains('7'));
        let deg = MethodOutcome::Degraded {
            reasons: vec![
                DegradeReason::BpNonConverged { iterations: 40 },
                DegradeReason::NumericClamped { non_finite: 3, zero_sum: 0 },
            ],
        };
        assert_eq!(deg.status(), "degraded");
        assert!(deg.detail().contains("bp-nonconverged(iters=40)"));
        assert!(deg.detail().contains("non-finite=3"));
        let failed =
            MethodOutcome::Failed { error: InferError::SolvePanicked { message: "boom".into() } };
        assert_eq!(failed.status(), "failed");
        assert!(failed.detail().contains("boom"));
    }

    #[test]
    fn table_is_sorted_and_tab_separated() {
        let mut outcomes = BTreeMap::new();
        outcomes.insert(MethodId::new("B", "m"), MethodOutcome::Ok { iterations: 1 });
        outcomes.insert(
            MethodId::new("A", "m"),
            MethodOutcome::Failed { error: InferError::ModelTooLarge { vars: 10, limit: 5 } },
        );
        let table = render_outcome_table(&outcomes);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("A.m\tfailed\t"));
        assert!(lines[1].starts_with("B.m\tok\t"));
    }

    #[test]
    fn panic_messages_extracted() {
        let r = std::panic::catch_unwind(|| panic!("static str"));
        assert_eq!(panic_message(r.unwrap_err().as_ref()), "static str");
        let label = "with value 3";
        let r = std::panic::catch_unwind(|| panic!("{label}"));
        assert_eq!(panic_message(r.unwrap_err().as_ref()), "with value 3");
    }

    #[test]
    fn reasons_order_deterministically() {
        let mut reasons =
            [DegradeReason::WorklistTruncated, DegradeReason::BpNonConverged { iterations: 2 }];
        reasons.sort();
        assert_eq!(reasons[0], DegradeReason::BpNonConverged { iterations: 2 });
    }
}
