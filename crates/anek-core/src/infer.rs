//! The modular `ANEK-INFER` worklist algorithm (paper Figure 9).
//!
//! Each method gets a probabilistic model built from its PFG; models are
//! solved method by method, publishing *probabilistic summaries* that
//! callers consume as evidence. The loop runs for at most `MaxIters` model
//! solves — a fixpoint is deliberately not required ("another source of
//! approximation", §3.4) — and finally thresholds the summaries into
//! deterministic specifications.
//!
//! ## Parallelism and determinism
//!
//! The worklist drains in *generations*, and each generation commits in
//! *chunks* of a few multiples of the thread count: a chunk's methods are
//! solved *speculatively* against a frozen snapshot of the
//! summaries/evidence maps — concurrently on `InferConfig::threads` scoped
//! threads, the merge thread participating as a worker — and the results
//! are then merged single-threaded, in the chunk's deterministic order. A
//! speculative result is committed only if none of the merges before it in
//! the chunk changed the method's inputs — its program-callee summaries or
//! its own caller-evidence store. If they did, the stale speculation is
//! discarded and the method is re-solved inline against the merged state.
//! A method's marginals are a pure function of exactly those inputs (the
//! skeleton is immutable, stamping reads only callee summaries and own
//! evidence, and BP is deterministic), so the committed sequence of solves
//! is precisely the one the classic sequential worklist performs — the
//! final specs, summaries and confidence are byte-identical for every
//! `threads` value, including `1` (which skips speculation entirely and
//! degenerates to plain sequential Gauss-Seidel with zero wasted work).
//!
//! Chunking (rather than speculating a whole generation at once) keeps the
//! speculation snapshot fresh: a solve can only be invalidated by merges
//! inside its own small chunk, not by every earlier merge of a long
//! generation, which cuts the discarded-solve waste that used to make
//! multithreaded runs slower than sequential ones. Wasted work is surfaced
//! in [`InferResult::speculative_solves`] /
//! [`InferResult::discarded_solves`], and the time the merge thread spends
//! blocked on its workers in [`InferResult::commit_stall`].
//!
//! Every worker owns one long-lived BP [`Scratch`] (as does the merge
//! thread), so message arrays and scheduler state are recycled across all
//! the solves of a run instead of reallocated per solve.
//!
//! Each method's static model skeleton (variables, L1–L3, heuristics,
//! own-spec and API priors) is built and compiled once, lazily at its first
//! solve; every re-solve only re-derives the dynamic unary priors
//! (`MethodSkeleton::stamp`), so the per-iteration cost is message passing,
//! not model construction.

use crate::config::InferConfig;
use crate::memo::{self, CacheKey, InferCache, KeyHasher, SolvedRecord};
use crate::model::{CallerEvidence, MethodSkeleton, ModelCtx};
use crate::outcome::{panic_message, DegradeReason, InferError, MethodOutcome};
use crate::summary::{MethodSummary, SlotProbs};
use analysis::pfg::{Pfg, PfgNodeKind};
use analysis::types::{Callee, MethodId, ProgramIndex};
use factor_graph::{GuardEvents, Scratch};
use java_syntax::ast::CompilationUnit;
use java_syntax::ExprId;
use spec_lang::{
    spec_of_method, ApiRegistry, MethodSpec, PermissionKind, SpecTarget, StateRegistry, StateSpace,
};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One completed model solve (see [`SolvedRecord`]) plus, when a cache is
/// attached, the content key it is addressed by and whether it was replayed
/// from the cache instead of computed.
#[derive(Debug, Clone)]
struct Solved {
    record: SolvedRecord,
    cache: Option<(CacheKey, bool)>,
    /// True when the solve stopped because `BpOptions::deadline` passed.
    /// Kept outside [`SolvedRecord`] on purpose: deadline truncation is
    /// timing-dependent, so such a record must never enter the store (the
    /// commit loop clears `cache` for it), and the store codec stays
    /// unchanged.
    deadline_expired: bool,
}

/// Health of a method's last *committed* solve, feeding outcome
/// classification after the worklist drains.
#[derive(Debug, Clone, Copy)]
struct SolveHealth {
    converged: bool,
    iterations: usize,
    guards: GuardEvents,
    deadline_expired: bool,
}

/// A solve either completes (possibly with degradations recorded in its
/// health fields) or fails with a structured error. Panics anywhere in the
/// solve — skeleton build, stamping, message passing, read-out — are caught
/// at this boundary and never cross a method.
type SolveResult = Result<Solved, InferError>;

/// The output of [`infer`].
#[derive(Debug, Clone)]
pub struct InferResult {
    /// Thresholded deterministic specifications per method.
    pub specs: BTreeMap<MethodId, MethodSpec>,
    /// The final probabilistic summaries.
    pub summaries: BTreeMap<MethodId, MethodSummary>,
    /// Confidence of each extracted spec (smallest chosen-atom marginal).
    pub confidence: BTreeMap<MethodId, f64>,
    /// Number of per-method model solves performed.
    pub solves: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Methods that had a hand-written spec already (their atoms acted as
    /// priors).
    pub pre_annotated: BTreeSet<MethodId>,
    /// Total BP sweeps (or sweep-equivalents) across all solves.
    pub bp_iterations: usize,
    /// Total BP message updates across all solves.
    pub message_updates: usize,
    /// Speculative parallel solves discarded because an earlier merge in
    /// the same chunk changed their inputs (always 0 single-threaded;
    /// the committed results are identical regardless). Not counted in
    /// `solves`/`bp_iterations`/`message_updates`, which describe the
    /// sequential algorithm's work.
    pub discarded_solves: usize,
    /// Solves attempted speculatively on the parallel path (always 0
    /// single-threaded). `discarded_solves / speculative_solves` is the
    /// waste ratio of the speculation; the difference is the solves the
    /// merge loop got for free.
    pub speculative_solves: usize,
    /// Wall-clock time the merge thread spent blocked waiting for workers
    /// to finish a speculation chunk after exhausting its own share of the
    /// work (always zero single-threaded). The directly measurable cost of
    /// commit serialization.
    pub commit_stall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
    /// Per-method outcome: `Ok`, `Degraded { reasons }` or
    /// `Failed { error }` (see [`crate::outcome`]). Deterministic for any
    /// thread count, like everything else here.
    pub outcomes: BTreeMap<MethodId, MethodOutcome>,
    /// Committed solves whose BP hit the iteration cap (or update budget)
    /// without reaching the convergence tolerance.
    pub nonconverged_solves: usize,
    /// Total numeric-guard clamps across all committed solves (NaN,
    /// infinite or zero-sum message mass absorbed by the kernel).
    pub numeric_guard_events: usize,
    /// Committed solves replayed from an attached [`InferCache`] (always 0
    /// without one). Deterministic for any thread count: lookups are
    /// accounted at the sequential commit point.
    pub memo_hits: usize,
    /// Committed successful solves that ran belief propagation because the
    /// attached cache had no record for their inputs (0 without a cache).
    /// Warm incremental runs re-solve exactly the dirty cone, so this is
    /// the "methods actually re-analyzed" metric the tests assert shrinks.
    pub memo_misses: usize,
    /// The program call graph over analyzable methods: callee → callers.
    /// This is the dependency index a persistent store saves for dirty-cone
    /// reporting.
    pub callers: BTreeMap<MethodId, BTreeSet<MethodId>>,
    /// Methods skipped by the bit-vector screening pre-pass
    /// (`InferConfig::screen`): provably protocol-conformant and isolated
    /// in the call graph, so no model was built for them. Always 0 with
    /// screening off. Their outcome is [`MethodOutcome::Screened`].
    pub screened_methods: usize,
    /// Whether `BpOptions::deadline` expired during this run — either
    /// inside a solve (truncating it) or between chunks (stopping the
    /// worklist early). Always `false` without a deadline; when `true`,
    /// the affected methods carry [`DegradeReason::DeadlineExpired`] and
    /// nothing deadline-truncated was written to the cache.
    pub deadline_hit: bool,
    /// Committed solves whose BP was truncated by the wall-clock deadline.
    pub deadline_truncated_solves: usize,
}

impl InferResult {
    /// Count of non-empty inferred specifications.
    pub fn annotation_count(&self) -> usize {
        self.specs.values().filter(|s| !s.is_empty()).count()
    }

    /// Methods whose outcome is `Degraded`.
    pub fn degraded_count(&self) -> usize {
        self.outcomes.values().filter(|o| o.is_degraded()).count()
    }

    /// Methods whose outcome is `Failed`.
    pub fn failed_count(&self) -> usize {
        self.outcomes.values().filter(|o| o.is_failed()).count()
    }

    /// Whether every method ended `Ok`.
    pub fn fully_ok(&self) -> bool {
        self.outcomes.values().all(MethodOutcome::is_ok)
    }

    /// The deterministic per-method outcome table
    /// (see [`crate::outcome::render_outcome_table`]).
    pub fn outcome_table(&self) -> String {
        crate::outcome::render_outcome_table(&self.outcomes)
    }
}

/// Builds the merged state registry: API state spaces plus program-declared
/// `@States("A, B, C")` class annotations.
pub fn merged_states(units: &[CompilationUnit], api: &ApiRegistry) -> StateRegistry {
    let mut reg = api.states.clone();
    for unit in units {
        for t in &unit.types {
            for ann in &t.annotations {
                if ann.name.simple() == "States" {
                    if let Some(list) = ann.single_string() {
                        reg.insert(StateSpace::parse_decl(&t.name, list));
                    }
                }
            }
        }
    }
    reg
}

/// One analyzable method: its PFG, existing spec, flags and the compiled
/// static skeleton of its probabilistic model. The skeleton is built lazily
/// on first solve — under a small `MaxIters` most methods are never solved,
/// and paying compilation for all of them up front would dwarf the solves.
struct MethodUnit {
    pfg: Arc<Pfg>,
    spec: MethodSpec,
    is_constructor: bool,
    skeleton: OnceLock<Result<MethodSkeleton, String>>,
}

impl MethodUnit {
    /// The compiled skeleton, built on first use (any thread may win the
    /// race; the build is a pure function of static inputs, so every
    /// contender produces the identical value).
    ///
    /// A panic during the build is caught *inside* the `OnceLock`
    /// initializer and cached as an error — re-solves of the method see the
    /// identical message instead of a poisoned lock, which keeps the
    /// outcome table byte-identical for every thread count.
    fn skeleton(
        &self,
        ctx: ModelCtx<'_>,
        cfg: &InferConfig,
    ) -> Result<&MethodSkeleton, InferError> {
        self.skeleton
            .get_or_init(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    MethodSkeleton::build(
                        ctx,
                        Arc::clone(&self.pfg),
                        &self.spec,
                        self.is_constructor,
                        cfg,
                    )
                }))
                .map_err(|p| panic_message(p.as_ref()))
            })
            .as_ref()
            .map_err(|message| InferError::SolvePanicked { message: message.clone() })
    }
}

/// Resolves `InferConfig::threads`: `0` means one per available core, and
/// explicit counts are clamped to the cores actually present — speculative
/// solving only pays off when the workers genuinely run concurrently, and
/// oversubscribing a small machine turns the speculation into pure waste
/// (every discarded solve burned a core the committed ones needed).
///
/// Results are byte-identical for any worker count, so the clamp never
/// changes output, only cost. Setting `ANEK_OVERSUBSCRIBE=1` disables the
/// clamp, which tests and CI use to exercise the speculative pipeline on
/// single-core runners.
fn resolve_threads(threads: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if threads == 0 {
        cores
    } else if std::env::var_os("ANEK_OVERSUBSCRIBE").is_some_and(|v| v != "0" && !v.is_empty()) {
        threads
    } else {
        threads.min(cores)
    }
}

/// Maps `items` through `f`, preserving order, fanning work out over up to
/// `threads` scoped worker threads. With one thread (or one item) the work
/// runs inline on the caller's stack.
fn map_parallel<I: Sync, T: Send>(
    threads: usize,
    items: &[I],
    f: impl Fn(&I) -> T + Sync,
) -> Vec<T> {
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Like [`map_parallel`], but every worker borrows one long-lived BP
/// [`Scratch`] from `pool` (the caller's thread takes the first and
/// participates as a worker), and the time the calling thread spent blocked
/// on its workers after finishing its own share is returned alongside the
/// results — that wait is precisely the commit pipeline's serialization
/// stall.
fn map_parallel_scratch<I: Sync, T: Send>(
    items: &[I],
    pool: &mut [Scratch],
    f: impl Fn(&I, &mut Scratch) -> T + Sync,
) -> (Vec<T>, Duration) {
    let workers = pool.len().min(items.len()).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let run = |scratch: &mut Scratch| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(item) = items.get(i) else { break };
        *slots[i].lock().unwrap() = Some(f(item, scratch));
    };
    let (main_scratch, rest) = pool.split_first_mut().expect("non-empty scratch pool");
    let mut idle_from: Option<Instant> = None;
    std::thread::scope(|scope| {
        let run = &run;
        for s in rest.iter_mut().take(workers - 1) {
            scope.spawn(move || run(s));
        }
        run(main_scratch);
        idle_from = Some(Instant::now());
        // The scope's implicit join is the wait being measured.
    });
    let stall = idle_from.map_or(Duration::ZERO, |t| t.elapsed());
    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every slot"))
        .collect();
    (results, stall)
}

/// Runs ANEK-INFER over the program.
///
/// `units` are the parsed sources of the program under inference, `api` the
/// developer-annotated library model.
pub fn infer(units: &[CompilationUnit], api: &ApiRegistry, cfg: &InferConfig) -> InferResult {
    infer_with_store(units, api, cfg, None)
}

/// Runs ANEK-INFER with an optional content-addressed solve cache.
///
/// With `cache` attached, the worklist still commits the exact sequence of
/// solves the plain algorithm performs — specs, summaries, outcomes and
/// work counters are byte-identical to [`infer`] — but any solve whose
/// static and dynamic inputs hash to a cached record replays that record
/// instead of building a skeleton and running belief propagation (see
/// [`crate::memo`] for the keying argument). Fresh solves are inserted at
/// commit time, so a subsequent run over an edited program re-solves only
/// the edit's transitive dirty cone.
pub fn infer_with_store(
    units: &[CompilationUnit],
    api: &ApiRegistry,
    cfg: &InferConfig,
    cache: Option<&dyn InferCache>,
) -> InferResult {
    cfg.validate();
    let start = Instant::now();
    let index = ProgramIndex::build(units.iter());
    let states = merged_states(units, api);
    let ctx = ModelCtx { index: &index, api, states: &states };
    let threads = resolve_threads(cfg.threads);

    // ---- Content fingerprints (only when a cache is attached) ----
    let unit_fps: Vec<CacheKey> = match cache {
        Some(_) => units.iter().map(memo::unit_fingerprint).collect(),
        None => Vec::new(),
    };
    let interface_fp = cache.map(|_| memo::interface_fingerprint(units, api)).unwrap_or_default();
    let config_fp = cache.map(|_| memo::config_fingerprint(cfg)).unwrap_or_default();

    // ---- Gather analyzable methods, build PFGs + model skeletons ----
    let mut meta: Vec<(MethodId, &str, &java_syntax::ast::MethodDecl, usize)> = Vec::new();
    let mut pre_annotated = BTreeSet::new();
    for (unit_idx, unit) in units.iter().enumerate() {
        for t in &unit.types {
            for m in t.methods() {
                if m.body.is_none() {
                    // Interface/abstract methods carry specs but no flow.
                    continue;
                }
                let id = MethodId::new(&t.name, &m.name);
                if !spec_of_method(m).unwrap_or_default().is_empty() {
                    pre_annotated.insert(id.clone());
                }
                meta.push((id, t.name.as_str(), m, unit_idx));
            }
        }
    }
    // ---- Bit-vector screening pre-pass (`--screen`) ----
    // Runs *before* any PFG or skeleton exists: methods the bitstate
    // interpreter proves protocol-conformant, and that are isolated in the
    // program call graph (their solves would publish no evidence and no
    // summary anyone reads), are dropped from the worklist entirely. The
    // eligibility rule is what keeps every non-screened method's committed
    // solve sequence — and hence its spec, summary and outcome —
    // byte-identical to an unscreened run that drains its worklist.
    let screened: BTreeSet<MethodId> = if cfg.screen {
        screen_methods(&index, api, cfg, &meta, &pre_annotated, threads)
    } else {
        BTreeSet::new()
    };
    if !screened.is_empty() {
        meta.retain(|(id, _, _, _)| !screened.contains(id));
    }
    let order: Vec<MethodId> = meta.iter().map(|(id, _, _, _)| id.clone()).collect();
    // The static half of each method's solve key: everything that fixes the
    // compiled skeleton (declaring unit, whole-program interface, config)
    // plus the method's fault token. Dynamic inputs are appended per solve.
    let static_keys: BTreeMap<MethodId, KeyHasher> = match cache {
        Some(_) => meta
            .iter()
            .map(|(id, _, _, unit_idx)| {
                let mut h = KeyHasher::new();
                h.write_str("solve");
                h.write_u32(memo::KEY_SCHEME_VERSION);
                h.write_u64(unit_fps[*unit_idx] as u64);
                h.write_u64((unit_fps[*unit_idx] >> 64) as u64);
                h.write_u64(interface_fp as u64);
                h.write_u64((interface_fp >> 64) as u64);
                h.write_u64(config_fp as u64);
                h.write_u64((config_fp >> 64) as u64);
                h.write_str(&id.class);
                h.write_str(&id.method);
                h.write_u64(memo::method_fault_token(cfg, id));
                (id.clone(), h)
            })
            .collect(),
        None => BTreeMap::new(),
    };
    // PFG construction is independent per method — the one-time setup cost
    // parallelizes trivially (and is skipped entirely for PFGs the cache
    // already holds). Skeletons compile lazily on first solve.
    let built: Vec<MethodUnit> = map_parallel(threads, &meta, |(id, type_name, m, unit_idx)| {
        let spec = spec_of_method(m).unwrap_or_default();
        let pfg_key = cache.map(|_| {
            let mut h = KeyHasher::new();
            h.write_str("pfg");
            h.write_u32(memo::KEY_SCHEME_VERSION);
            h.write_u64(unit_fps[*unit_idx] as u64);
            h.write_u64((unit_fps[*unit_idx] >> 64) as u64);
            h.write_u64(interface_fp as u64);
            h.write_u64((interface_fp >> 64) as u64);
            h.write_bool(cfg.branch_sensitive);
            h.write_str(&id.class);
            h.write_str(&id.method);
            h.finish()
        });
        let cached_pfg = match (cache, pfg_key) {
            (Some(c), Some(key)) => c.pfg_lookup(key),
            _ => None,
        };
        let pfg = cached_pfg.unwrap_or_else(|| {
            let pfg = Arc::new(Pfg::build_with_refinement(
                &index,
                api,
                type_name,
                m,
                cfg.branch_sensitive,
            ));
            if let (Some(c), Some(key)) = (cache, pfg_key) {
                c.pfg_insert(key, &pfg);
            }
            pfg
        });
        MethodUnit { pfg, spec, is_constructor: m.is_constructor(), skeleton: OnceLock::new() }
    });
    let mut methods: BTreeMap<MethodId, MethodUnit> = BTreeMap::new();
    for (id, mu) in order.iter().cloned().zip(built) {
        methods.insert(id, mu);
    }

    // ---- Call maps: callers (who must be re-analyzed when a summary
    //      changes) and callees (what a method's solve reads — its dynamic
    //      priors are a function of exactly its program-callee summaries
    //      plus its own caller-evidence store) ----
    let mut callers: BTreeMap<MethodId, BTreeSet<MethodId>> = BTreeMap::new();
    let mut callees: BTreeMap<MethodId, BTreeSet<MethodId>> = BTreeMap::new();
    for (id, mu) in &methods {
        for n in mu.pfg.call_nodes() {
            let callee = match &n.kind {
                PfgNodeKind::CallPre { callee, .. }
                | PfgNodeKind::CallPost { callee, .. }
                | PfgNodeKind::CallResult { callee, .. } => callee,
                _ => continue,
            };
            if let Callee::Program(c) = callee {
                callers.entry(c.clone()).or_default().insert(id.clone());
                callees.entry(id.clone()).or_default().insert(c.clone());
            }
        }
    }

    // ---- INIT (Figure 9 lines 2–6): summaries from priors ----
    let mut summaries: BTreeMap<MethodId, MethodSummary> = BTreeMap::new();
    for (id, mu) in &methods {
        summaries.insert(id.clone(), initial_summary(ctx, mu, cfg));
    }

    // ---- The worklist loop (lines 8–21), drained in generations ----
    // Caller-side evidence per callee: (caller, call-site) -> observed
    // marginals. This is the second half of the PARAMARG binding — caller
    // demands aggregate onto callee summaries (the Figure 3 conflict story).
    let mut evidence: BTreeMap<MethodId, BTreeMap<(MethodId, ExprId), CallerEvidence>> =
        BTreeMap::new();
    let mut pending: Vec<MethodId> = order.clone();
    let mut queued: BTreeSet<MethodId> = order.iter().cloned().collect();
    let mut solves = 0usize;
    let mut bp_iterations = 0usize;
    let mut message_updates = 0usize;
    let mut discarded_solves = 0usize;
    let mut speculative_solves = 0usize;
    let mut commit_stall = Duration::ZERO;
    let mut nonconverged_solves = 0usize;
    let mut numeric_guard_events = 0usize;
    let mut memo_hits = 0usize;
    let mut memo_misses = 0usize;
    // Fault-isolation state: methods whose solve failed are frozen at their
    // last committed summary and never re-solved or re-queued; the health
    // of every other method's *latest committed* solve feeds the outcomes.
    let mut failed: BTreeMap<MethodId, InferError> = BTreeMap::new();
    let mut last_health: BTreeMap<MethodId, SolveHealth> = BTreeMap::new();
    let mut deadline_truncated_solves = 0usize;
    // Set when the wall-clock deadline stops the worklist between chunks;
    // still-queued methods are then truncated *because of* the deadline.
    let mut worklist_deadline = false;
    let empty_deps = BTreeSet::new();
    // One long-lived BP scratch per worker (index 0 is the merge thread's):
    // message arrays and scheduler state are recycled across every solve of
    // the run instead of reallocated per method.
    let mut scratch_pool: Vec<Scratch> = (0..threads.max(1)).map(|_| Scratch::new()).collect();
    // Solves one method against the *current* summary/evidence state.
    // Panics anywhere inside — injected or organic — are caught here, at
    // the per-method boundary, and become structured `Failed` outcomes.
    let solve_one = |id: &MethodId,
                     summaries: &BTreeMap<MethodId, MethodSummary>,
                     evidence: &BTreeMap<
        MethodId,
        BTreeMap<(MethodId, ExprId), CallerEvidence>,
    >,
                     scratch: &mut Scratch|
     -> SolveResult {
        let mu = &methods[id];
        // Injected slowness: a replayable stand-in for a pathologically
        // slow model. Applied before the cache lookup so deadline tests
        // behave the same against a warm store. Never changes the result,
        // so it stays out of the content key (like `threads`).
        if let Some(ms) = cfg.faults.slow_ms(id) {
            std::thread::sleep(Duration::from_millis(ms));
        }
        // The full content key: the method's static key extended with its
        // dynamic inputs — exactly the program-callee summaries and own
        // caller evidence the stamp reads. A hit replays the bit-identical
        // record a fresh solve would produce.
        let key = cache.map(|_| {
            let mut h = static_keys[id].clone();
            let deps = callees.get(id).unwrap_or(&empty_deps);
            h.write_u64(deps.len() as u64);
            for callee in deps {
                h.write_str(&callee.class);
                h.write_str(&callee.method);
                match summaries.get(callee) {
                    Some(s) => {
                        h.write_bool(true);
                        memo::write_summary(&mut h, s);
                    }
                    None => h.write_bool(false),
                }
            }
            let own = evidence.get(id);
            h.write_u64(own.map_or(0, BTreeMap::len) as u64);
            for ((caller, site), ev) in own.into_iter().flatten() {
                h.write_str(&caller.class);
                h.write_str(&caller.method);
                h.write_u32(site.0);
                memo::write_evidence(&mut h, ev);
            }
            h.finish()
        });
        if let (Some(c), Some(key)) = (cache, key) {
            if let Some(record) = c.solve_lookup(key) {
                return Ok(Solved { record, cache: Some((key, true)), deadline_expired: false });
            }
        }
        catch_unwind(AssertUnwindSafe(|| -> SolveResult {
            if cfg.faults.should_panic(id) {
                panic!("injected fault: scripted panic in solve of {id}");
            }
            let skeleton = mu.skeleton(ctx, cfg)?;
            let vars = skeleton.graph.num_vars();
            if vars > cfg.max_model_vars {
                return Err(InferError::ModelTooLarge { vars, limit: cfg.max_model_vars });
            }
            let own_evidence: Vec<CallerEvidence> =
                evidence.get(id).map(|m| m.values().cloned().collect()).unwrap_or_default();
            let extras = skeleton.stamp(ctx, summaries, &own_evidence);
            let marginals = skeleton.solve_scratch(&extras, cfg, scratch);
            // A deadline-truncated solve is timing-dependent: never let it
            // into the shared store, where it would poison byte-identical
            // warm replays for every other client.
            let cache = if marginals.deadline_expired { None } else { key.map(|k| (k, false)) };
            Ok(Solved {
                record: SolvedRecord {
                    summary: skeleton.read_summary(ctx, &marginals),
                    call_evidence: skeleton.read_call_evidence(ctx, &marginals),
                    iterations: marginals.iterations,
                    updates: marginals.updates,
                    converged: marginals.converged,
                    guards: marginals.guards,
                },
                cache,
                deadline_expired: marginals.deadline_expired,
            })
        }))
        .unwrap_or_else(|p| Err(InferError::SolvePanicked { message: panic_message(p.as_ref()) }))
    };
    while !pending.is_empty() && solves < cfg.max_iters && !worklist_deadline {
        // Take one generation, truncated so `solves` respects MaxIters.
        let take = pending.len().min(cfg.max_iters - solves);
        let generation: Vec<MethodId> = pending.drain(..take).collect();
        solves += generation.len();
        // Commit the generation in chunks of a few thread-counts each.
        // Each chunk is solved speculatively in parallel against the state
        // merged so far (frozen for the chunk's duration); the merge below
        // commits a speculative result only if the merges before it *in the
        // same chunk* left the method's inputs untouched; otherwise it
        // re-solves against the merged state — so the committed sequence of
        // solves is *exactly* the one the sequential worklist performs, for
        // any thread count. Small chunks keep the snapshot fresh (a solve
        // can only be invalidated by the handful of merges in its own
        // chunk), which bounds discarded-solve waste. With one worker the
        // speculation is skipped and every solve runs lazily at merge time
        // (plain sequential Gauss-Seidel, no waste).
        let parallel = threads.min(generation.len()) > 1;
        let chunk_len = if parallel { threads * 4 } else { generation.len() };
        for chunk in generation.chunks(chunk_len.max(1)) {
            // Deadline polled at chunk granularity: once it passes, the
            // remaining chunks are never scheduled. Their methods stay in
            // `queued`, so they classify as worklist-truncated (with the
            // deadline as the recorded cause) — and `solves` keeps counting
            // only the sequential algorithm's committed work.
            if worklist_deadline || deadline_passed(cfg) {
                worklist_deadline = true;
                solves -= chunk.len();
                continue;
            }
            let speculated: Option<Vec<SolveResult>> = (parallel && chunk.len() > 1).then(|| {
                speculative_solves += chunk.len();
                let (results, stall) = map_parallel_scratch(chunk, &mut scratch_pool, |id, s| {
                    solve_one(id, &summaries, &evidence, s)
                });
                commit_stall += stall;
                results
            });
            // Merge sequentially, in chunk order. Inputs dirtied by the
            // merges so far: summaries re-published and evidence stores
            // touched during *this* chunk (freshness is relative to the
            // chunk-start snapshot the speculation consumed).
            let mut dirty_summaries: BTreeSet<MethodId> = BTreeSet::new();
            let mut dirty_evidence: BTreeSet<MethodId> = BTreeSet::new();
            for (pos, id) in chunk.iter().enumerate() {
                queued.remove(id);
                let deps = callees.get(id).unwrap_or(&empty_deps);
                let fresh = !dirty_evidence.contains(id) && deps.is_disjoint(&dirty_summaries);
                let solved: SolveResult = match &speculated {
                    Some(outcomes) if fresh => outcomes[pos].clone(),
                    Some(_) => {
                        // Speculation consumed stale inputs; redo sequentially.
                        discarded_solves += 1;
                        solve_one(id, &summaries, &evidence, &mut scratch_pool[0])
                    }
                    None => solve_one(id, &summaries, &evidence, &mut scratch_pool[0]),
                };
                let s = match solved {
                    Ok(s) => s,
                    Err(error) => {
                        // Fault isolation: freeze the method at its last
                        // committed summary. It publishes nothing, so no other
                        // method's inputs change; it is never re-queued, so a
                        // deterministic fault costs exactly one failed solve.
                        failed.insert(id.clone(), error);
                        continue;
                    }
                };
                // Cache accounting happens here, at the sequential commit
                // point, so hits/misses (and the store contents) evolve exactly
                // as in a single-threaded run. Discarded speculations are never
                // inserted — only committed solves enter the store.
                match &s.cache {
                    Some((_, true)) => memo_hits += 1,
                    Some((key, false)) => {
                        memo_misses += 1;
                        if let Some(c) = cache {
                            c.solve_insert(*key, &s.record);
                        }
                    }
                    None => {}
                }
                let deadline_expired = s.deadline_expired;
                if deadline_expired {
                    deadline_truncated_solves += 1;
                }
                let s = s.record;
                bp_iterations += s.iterations;
                message_updates += s.updates;
                if !s.converged {
                    nonconverged_solves += 1;
                }
                numeric_guard_events += s.guards.non_finite + s.guards.zero_sum;
                last_health.insert(
                    id.clone(),
                    SolveHealth {
                        converged: s.converged,
                        iterations: s.iterations,
                        guards: s.guards,
                        deadline_expired,
                    },
                );
                let mut to_queue: Vec<MethodId> = Vec::new();
                // Publish evidence about callees observed at this method's sites.
                for (callee, sites) in s.call_evidence {
                    let store = evidence.entry(callee.clone()).or_default();
                    let mut changed = false;
                    for (site, ev) in sites {
                        let key = (id.clone(), site);
                        match store.get(&key) {
                            Some(old) if old.max_delta(&ev) <= cfg.summary_epsilon => {}
                            _ => {
                                store.insert(key, ev);
                                changed = true;
                            }
                        }
                    }
                    if changed {
                        dirty_evidence.insert(callee.clone());
                        if callee != *id {
                            to_queue.push(callee);
                        }
                    }
                }
                let old = &summaries[id];
                if s.summary.max_delta(old) > cfg.summary_epsilon {
                    summaries.insert(id.clone(), s.summary);
                    dirty_summaries.insert(id.clone());
                    // Re-enqueue the method itself (per Figure 9 line 19) and
                    // its callers, whose models consumed the stale summary.
                    to_queue.push(id.clone());
                    if let Some(cs) = callers.get(id) {
                        to_queue.extend(cs.iter().cloned());
                    }
                }
                for q in to_queue {
                    if !failed.contains_key(&q) && queued.insert(q.clone()) {
                        pending.push(q);
                    }
                }
            }
        }
    }

    // ---- Outcome classification ----
    let mut outcomes: BTreeMap<MethodId, MethodOutcome> = BTreeMap::new();
    for (id, mu) in &methods {
        if let Some(error) = failed.get(id) {
            outcomes.insert(id.clone(), MethodOutcome::Failed { error: error.clone() });
            continue;
        }
        let mut reasons: Vec<DegradeReason> = Vec::new();
        let health = last_health.get(id).copied();
        if let Some(SolveHealth { converged, iterations, guards, deadline_expired }) = health {
            if !converged {
                reasons.push(DegradeReason::BpNonConverged { iterations });
            }
            if guards.any() {
                reasons.push(DegradeReason::NumericClamped {
                    non_finite: guards.non_finite,
                    zero_sum: guards.zero_sum,
                });
            }
            if deadline_expired {
                reasons.push(DegradeReason::DeadlineExpired);
            }
        }
        if queued.contains(id) {
            reasons.push(DegradeReason::WorklistTruncated);
            if worklist_deadline {
                reasons.push(DegradeReason::DeadlineExpired);
            }
        }
        // The configured fallback: a non-converged method republishes its
        // INIT prior summary (uniform-h — soft constraints still give an
        // answer) instead of the truncated solve's marginals.
        if cfg.degraded_fallback
            && reasons.iter().any(|r| matches!(r, DegradeReason::BpNonConverged { .. }))
        {
            summaries.insert(id.clone(), initial_summary(ctx, mu, cfg));
            reasons.push(DegradeReason::PriorFallback);
        }
        let outcome = if reasons.is_empty() {
            MethodOutcome::Ok { iterations: health.map_or(0, |h| h.iterations) }
        } else {
            reasons.sort();
            reasons.dedup();
            MethodOutcome::Degraded { reasons }
        };
        outcomes.insert(id.clone(), outcome);
    }
    for id in &screened {
        outcomes.insert(id.clone(), MethodOutcome::Screened);
    }

    // ---- Spec extraction (lines 22–29) ----
    let mut specs = BTreeMap::new();
    let mut confidence = BTreeMap::new();
    for (id, summary) in &summaries {
        let (spec, conf) = summary.extract_spec_with_confidence(cfg.threshold);
        specs.insert(id.clone(), spec);
        confidence.insert(id.clone(), conf);
    }

    InferResult {
        specs,
        summaries,
        confidence,
        solves,
        elapsed: start.elapsed(),
        pre_annotated,
        bp_iterations,
        message_updates,
        discarded_solves,
        speculative_solves,
        commit_stall,
        threads,
        outcomes,
        nonconverged_solves,
        numeric_guard_events,
        memo_hits,
        memo_misses,
        callers,
        screened_methods: screened.len(),
        deadline_hit: worklist_deadline || deadline_truncated_solves > 0,
        deadline_truncated_solves,
    }
}

/// Whether the run's wall-clock deadline (if any) has passed.
fn deadline_passed(cfg: &InferConfig) -> bool {
    cfg.bp.deadline.is_some_and(|d| Instant::now() >= d)
}

/// The screening pre-pass: classifies every candidate method with the
/// bit-vector interpreter (against API models plus the program's
/// hand-written specs) and returns the set that is safe to skip.
///
/// Safe means provably clean *and* inference-isolated: no program callees
/// (the method's solves would publish no caller evidence) and no program
/// callers (nobody stamps its summary into a model). Skipping such a
/// method removes only its own solves from the sequential worklist — every
/// other method reads exactly the inputs it would have read anyway. Hand-
/// annotated and fault-targeted methods are never screened (their INIT
/// summaries and injected failures are observable output).
fn screen_methods(
    index: &ProgramIndex,
    api: &ApiRegistry,
    cfg: &InferConfig,
    meta: &[(MethodId, &str, &java_syntax::ast::MethodDecl, usize)],
    pre_annotated: &BTreeSet<MethodId>,
    threads: usize,
) -> BTreeSet<MethodId> {
    use analysis::cfg::Cfg;
    use analysis::events::EventKind;
    use analysis::types::{ref_type_name, TypeEnv};

    let mut program_specs = bitstate::ProgramSpecs::new();
    for (id, _, m, _) in meta {
        if pre_annotated.contains(id) {
            let spec = spec_of_method(m).unwrap_or_default();
            let ret = m.return_type.as_ref().and_then(ref_type_name);
            program_specs.insert(id.clone(), (spec, ret));
        }
    }
    let machine = bitstate::Machine::compile(api, &program_specs);

    // Per-method: bitstate verdict plus the set of program callees.
    let scanned: Vec<(bool, BTreeSet<MethodId>)> =
        map_parallel(threads, meta, |(id, type_name, m, _)| {
            let mut env = TypeEnv::for_method(index, api, type_name, m);
            let body = Cfg::build(m, &mut env);
            let mut prog_callees = BTreeSet::new();
            for block in &body.blocks {
                for e in &block.events {
                    let callee = match &e.kind {
                        EventKind::New { callee, .. } | EventKind::Call { callee, .. } => callee,
                        _ => continue,
                    };
                    if let Callee::Program(c) = callee {
                        prog_callees.insert(c.clone());
                    }
                }
            }
            let params: Vec<String> = m.params.iter().map(|p| p.name.clone()).collect();
            let report = machine.check_method(id, &body, &params, m.modifiers.is_static);
            (report.verdict == bitstate::Verdict::ProvablyClean, prog_callees)
        });

    let mut called: BTreeSet<MethodId> = BTreeSet::new();
    for (_, callees) in &scanned {
        called.extend(callees.iter().cloned());
    }
    meta.iter()
        .zip(&scanned)
        .filter(|((id, _, m, _), (clean, prog_callees))| {
            *clean
                && prog_callees.is_empty()
                && !called.contains(id)
                && !pre_annotated.contains(id)
                && !cfg.faults.should_panic(id)
                && !cfg.faults.nan_factor(id)
                && cfg.faults.oversize_extra(id) == 0
                && cfg.faults.slow_ms(id).is_none()
                && !m.is_constructor()
        })
        .map(|((id, _, _, _), _)| id.clone())
        .collect()
}

/// The INIT summary: spec-derived high/low priors where an annotation
/// exists, uniform elsewhere.
fn initial_summary(ctx: ModelCtx<'_>, mu: &MethodUnit, cfg: &InferConfig) -> MethodSummary {
    let slot_for = |ty: &str, atom: Option<&spec_lang::PermAtom>| -> SlotProbs {
        let mut slot = SlotProbs::uniform(ctx.states_of(Some(ty)));
        if let Some(atom) = atom {
            for k in PermissionKind::ALL {
                slot.set_kind(k, if k == atom.kind { cfg.p_spec_high } else { cfg.p_spec_low });
            }
            let st = atom.effective_state();
            let names: Vec<String> = slot.states.keys().cloned().collect();
            for name in names {
                let p = if name == st { cfg.p_spec_high } else { cfg.p_spec_low };
                slot.states.insert(name, p);
            }
        }
        slot
    };
    let params = mu
        .pfg
        .params
        .iter()
        .map(|p| {
            let target =
                if p.name == "this" { SpecTarget::This } else { SpecTarget::Param(p.name.clone()) };
            (
                p.name.clone(),
                slot_for(&p.type_name, mu.spec.requires.for_target(&target)),
                slot_for(&p.type_name, mu.spec.ensures.for_target(&target)),
            )
        })
        .collect();
    let result = mu
        .pfg
        .result
        .as_ref()
        .map(|(ty, _)| slot_for(ty, mu.spec.ensures.for_target(&SpecTarget::Result)));
    MethodSummary { params, result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::standard_api;

    fn run(src: &str) -> InferResult {
        let unit = parse(src).unwrap();
        let api = standard_api();
        infer(&[unit], &api, &InferConfig::default())
    }

    const FIG3: &str = r#"
        class Row {
            Collection<Integer> entries;
            Iterator<Integer> createColIter() {
                return entries.iterator();
            }
            void add(int val) { }
        }
        class App {
            Row copy(Row original) {
                Iterator<Integer> iter = original.createColIter();
                Row result = new Row();
                while (iter.hasNext()) {
                    result.add(iter.next());
                }
                return result;
            }
            @Test
            void testParseCSV() {
                Row r1 = parseCSVRow("1,2,3,4");
                Row r2 = parseCSVRow("4,6,7,8");
                int sum = r1.createColIter().next() + r2.createColIter().next();
                assert sum != 5;
            }
            static Row parseCSVRow(String text) { return new Row(); }
        }
    "#;

    #[test]
    fn figure3_createcoliter_resolves_conflict_to_alive_unique() {
        // The paper's running example (§1): testParseCSV calls next()
        // directly (wants HASNEXT), while copy and the iterator() spec say
        // ALIVE. Evidence for ALIVE outweighs HASNEXT, and H3 picks unique.
        let result = run(FIG3);
        let id = MethodId::new("Row", "createColIter");
        let spec = &result.specs[&id];
        let atom = spec.ensures.for_target(&SpecTarget::Result).expect("result spec inferred");
        assert_eq!(atom.kind, PermissionKind::Unique, "H3: create* returns unique");
        let state = atom.state.as_deref().unwrap_or(spec_lang::ALIVE);
        assert_eq!(state, spec_lang::ALIVE, "majority evidence selects ALIVE over HASNEXT");
    }

    #[test]
    fn figure3_summary_shows_conflicting_evidence() {
        let result = run(FIG3);
        let id = MethodId::new("Row", "createColIter");
        let summary = &result.summaries[&id];
        let res = summary.result.as_ref().unwrap();
        // ALIVE beats HASNEXT, but HASNEXT is not certainly-false: the
        // conflicting site left a trace.
        assert!(res.state("ALIVE") > res.state("HASNEXT"));
    }

    #[test]
    fn drain_helper_infers_full_iterator_param() {
        let result = run(r#"
            class App {
                void drain(Iterator<Integer> it) {
                    while (it.hasNext()) { it.next(); }
                }
            }
        "#);
        let spec = &result.specs[&MethodId::new("App", "drain")];
        let atom = spec.requires.for_target(&SpecTarget::Param("it".into()));
        let atom = atom.expect("it gets a precondition");
        assert!(atom.kind.allows_write(), "next() needs a writing permission, got {}", atom.kind);
    }

    #[test]
    fn summaries_flow_through_wrappers() {
        // level2 wraps level1 which calls next(); the requirement should
        // propagate up the call chain through summaries.
        let result = run(r#"
            class App {
                void level1(Iterator<Integer> it) { it.next(); }
                void level2(Iterator<Integer> it) { level1(it); }
            }
        "#);
        let l2 = &result.specs[&MethodId::new("App", "level2")];
        let atom = l2.requires.for_target(&SpecTarget::Param("it".into()));
        assert!(atom.is_some(), "level2 should inherit level1's requirement: {l2:?}");
        let s = &result.summaries[&MethodId::new("App", "level2")];
        let (pre, _) = s.param("it").unwrap();
        assert!(
            pre.state("HASNEXT") > 0.5,
            "HASNEXT requirement propagates: {:.3}",
            pre.state("HASNEXT")
        );
    }

    #[test]
    fn pre_annotated_methods_are_recorded() {
        let result = run(r#"
            class App {
                @Perm(requires = "pure(this)", ensures = "pure(this)")
                void annotated() { }
                void plain() { }
            }
        "#);
        assert!(result.pre_annotated.contains(&MethodId::new("App", "annotated")));
        assert!(!result.pre_annotated.contains(&MethodId::new("App", "plain")));
    }

    #[test]
    fn max_iters_bounds_work() {
        let src = r#"
            class App {
                void a(Iterator<Integer> it) { b(it); }
                void b(Iterator<Integer> it) { c(it); }
                void c(Iterator<Integer> it) { it.next(); }
            }
        "#;
        let unit = parse(src).unwrap();
        let api = standard_api();
        let cheap = infer(
            std::slice::from_ref(&unit),
            &api,
            &InferConfig { max_iters: 3, ..InferConfig::default() },
        );
        assert!(cheap.solves <= 3);
        let full = infer(&[unit], &api, &InferConfig::default());
        assert!(full.solves >= 3, "re-analysis should occur: {}", full.solves);
        // The trade-off the paper describes: more iterations, better specs.
        let a_pre_full =
            full.summaries[&MethodId::new("App", "a")].param("it").unwrap().0.state("HASNEXT");
        assert!(a_pre_full > 0.5, "with enough iterations a() learns HASNEXT: {a_pre_full:.3}");
    }

    #[test]
    fn states_annotation_merges_into_registry() {
        let unit = parse(r#"@States("OPEN, SHUT") class Door { void m() { } }"#).unwrap();
        let api = standard_api();
        let reg = merged_states(&[unit], &api);
        let space = reg.get("Door").expect("Door space registered");
        assert!(space.contains("OPEN"));
        assert!(space.contains("SHUT"));
        // API spaces survive the merge.
        assert!(reg.get("Iterator").is_some());
    }

    #[test]
    fn branch_sensitivity_extension_sees_through_state_tests() {
        // The paper's fourth-warning scenario (§4.2): provably HASNEXT on
        // return, but only via branch reasoning. ANEK proper infers ALIVE;
        // the future-work extension infers HASNEXT.
        let src = r#"class Registry {
            Collection<Integer> items;
            Iterator<Integer> createReadyIter() {
                Iterator<Integer> it = items.iterator();
                if (!it.hasNext()) {
                    throw new RuntimeException("empty");
                }
                return it;
            }
        }"#;
        let unit = parse(src).unwrap();
        let api = standard_api();
        let id = MethodId::new("Registry", "createReadyIter");

        let plain = infer(std::slice::from_ref(&unit), &api, &InferConfig::default());
        let plain_atom = plain.specs[&id].ensures.for_target(&SpecTarget::Result).cloned().unwrap();
        assert_eq!(plain_atom.kind, PermissionKind::Unique);
        assert_eq!(plain_atom.state.as_deref().unwrap_or(spec_lang::ALIVE), spec_lang::ALIVE);

        let ext_cfg = InferConfig { branch_sensitive: true, ..InferConfig::default() };
        let ext = infer(&[unit], &api, &ext_cfg);
        let ext_atom = ext.specs[&id].ensures.for_target(&SpecTarget::Result).cloned().unwrap();
        assert_eq!(ext_atom.kind, PermissionKind::Unique);
        assert_eq!(
            ext_atom.state.as_deref(),
            Some("HASNEXT"),
            "the extension proves HASNEXT through the test"
        );
    }

    #[test]
    fn elapsed_and_solves_populated() {
        let result = run("class App { void m() { } }");
        assert!(result.solves >= 1);
        assert!(result.elapsed.as_nanos() > 0);
    }
}
