//! The modular `ANEK-INFER` worklist algorithm (paper Figure 9).
//!
//! Each method gets a probabilistic model built from its PFG; models are
//! solved one method at a time, publishing *probabilistic summaries* that
//! callers consume as evidence. The loop runs for at most `MaxIters` model
//! solves — a fixpoint is deliberately not required ("another source of
//! approximation", §3.4) — and finally thresholds the summaries into
//! deterministic specifications.

use crate::config::InferConfig;
use crate::model::{CallerEvidence, MethodModel, ModelCtx};
use crate::summary::{MethodSummary, SlotProbs};
use analysis::pfg::{Pfg, PfgNodeKind};
use analysis::types::{Callee, MethodId, ProgramIndex};
use java_syntax::ast::CompilationUnit;
use java_syntax::ExprId;
use spec_lang::{
    spec_of_method, ApiRegistry, MethodSpec, PermissionKind, SpecTarget, StateRegistry, StateSpace,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::{Duration, Instant};

/// The output of [`infer`].
#[derive(Debug, Clone)]
pub struct InferResult {
    /// Thresholded deterministic specifications per method.
    pub specs: BTreeMap<MethodId, MethodSpec>,
    /// The final probabilistic summaries.
    pub summaries: BTreeMap<MethodId, MethodSummary>,
    /// Confidence of each extracted spec (smallest chosen-atom marginal).
    pub confidence: BTreeMap<MethodId, f64>,
    /// Number of per-method model solves performed.
    pub solves: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Methods that had a hand-written spec already (their atoms acted as
    /// priors).
    pub pre_annotated: BTreeSet<MethodId>,
}

impl InferResult {
    /// Count of non-empty inferred specifications.
    pub fn annotation_count(&self) -> usize {
        self.specs.values().filter(|s| !s.is_empty()).count()
    }
}

/// Builds the merged state registry: API state spaces plus program-declared
/// `@States("A, B, C")` class annotations.
pub fn merged_states(units: &[CompilationUnit], api: &ApiRegistry) -> StateRegistry {
    let mut reg = api.states.clone();
    for unit in units {
        for t in &unit.types {
            for ann in &t.annotations {
                if ann.name.simple() == "States" {
                    if let Some(list) = ann.single_string() {
                        reg.insert(StateSpace::parse_decl(&t.name, list));
                    }
                }
            }
        }
    }
    reg
}

/// One analyzable method: its PFG, existing spec and flags.
struct MethodUnit {
    pfg: Pfg,
    spec: MethodSpec,
    is_constructor: bool,
}

/// Runs ANEK-INFER over the program.
///
/// `units` are the parsed sources of the program under inference, `api` the
/// developer-annotated library model.
pub fn infer(units: &[CompilationUnit], api: &ApiRegistry, cfg: &InferConfig) -> InferResult {
    cfg.validate();
    let start = Instant::now();
    let index = ProgramIndex::build(units.iter());
    let states = merged_states(units, api);
    let ctx = ModelCtx { index: &index, api, states: &states };

    // ---- Gather analyzable methods, their PFGs and priors ----
    let mut methods: BTreeMap<MethodId, MethodUnit> = BTreeMap::new();
    let mut order: Vec<MethodId> = Vec::new();
    let mut pre_annotated = BTreeSet::new();
    for unit in units {
        for t in &unit.types {
            for m in t.methods() {
                if m.body.is_none() {
                    // Interface/abstract methods carry specs but no flow.
                    continue;
                }
                let id = MethodId::new(&t.name, &m.name);
                let spec = spec_of_method(m).unwrap_or_default();
                if !spec.is_empty() {
                    pre_annotated.insert(id.clone());
                }
                let pfg = Pfg::build_with_refinement(&index, api, &t.name, m, cfg.branch_sensitive);
                order.push(id.clone());
                methods.insert(id, MethodUnit { pfg, spec, is_constructor: m.is_constructor() });
            }
        }
    }

    // ---- Caller map (who must be re-analyzed when a summary changes) ----
    let mut callers: BTreeMap<MethodId, BTreeSet<MethodId>> = BTreeMap::new();
    for (id, mu) in &methods {
        for n in mu.pfg.call_nodes() {
            let callee = match &n.kind {
                PfgNodeKind::CallPre { callee, .. }
                | PfgNodeKind::CallPost { callee, .. }
                | PfgNodeKind::CallResult { callee, .. } => callee,
                _ => continue,
            };
            if let Callee::Program(c) = callee {
                callers.entry(c.clone()).or_default().insert(id.clone());
            }
        }
    }

    // ---- INIT (Figure 9 lines 2–6): summaries from priors ----
    let mut summaries: BTreeMap<MethodId, MethodSummary> = BTreeMap::new();
    for (id, mu) in &methods {
        summaries.insert(id.clone(), initial_summary(ctx, mu, cfg));
    }

    // ---- The worklist loop (lines 8–21) ----
    // Caller-side evidence per callee: (caller, call-site) -> observed
    // marginals. This is the second half of the PARAMARG binding — caller
    // demands aggregate onto callee summaries (the Figure 3 conflict story).
    let mut evidence: BTreeMap<MethodId, BTreeMap<(MethodId, ExprId), CallerEvidence>> =
        BTreeMap::new();
    let mut worklist: VecDeque<MethodId> = order.iter().cloned().collect();
    let mut queued: BTreeSet<MethodId> = order.iter().cloned().collect();
    let mut solves = 0usize;
    while solves < cfg.max_iters {
        let Some(id) = worklist.pop_front() else { break };
        queued.remove(&id);
        let mu = &methods[&id];
        solves += 1;
        let own_evidence: Vec<CallerEvidence> =
            evidence.get(&id).map(|m| m.values().cloned().collect()).unwrap_or_default();
        let model = MethodModel::build_with_evidence(
            ctx,
            mu.pfg.clone(),
            &mu.spec,
            mu.is_constructor,
            &summaries,
            &own_evidence,
            cfg,
        );
        let marginals = model.graph.solve(&cfg.bp);
        let new_summary = model.read_summary(ctx, &marginals);
        let mut to_queue: Vec<MethodId> = Vec::new();
        // Publish evidence about callees observed at this method's sites.
        for (callee, sites) in model.read_call_evidence(ctx, &marginals) {
            let store = evidence.entry(callee.clone()).or_default();
            let mut changed = false;
            for (site, ev) in sites {
                let key = (id.clone(), site);
                match store.get(&key) {
                    Some(old) if old.max_delta(&ev) <= cfg.summary_epsilon => {}
                    _ => {
                        store.insert(key, ev);
                        changed = true;
                    }
                }
            }
            if changed && callee != id {
                to_queue.push(callee);
            }
        }
        let old = &summaries[&id];
        if new_summary.max_delta(old) > cfg.summary_epsilon {
            summaries.insert(id.clone(), new_summary);
            // Re-enqueue the method itself (per Figure 9 line 19) and its
            // callers, whose models consumed the stale summary.
            to_queue.push(id.clone());
            if let Some(cs) = callers.get(&id) {
                to_queue.extend(cs.iter().cloned());
            }
        }
        for q in to_queue {
            if queued.insert(q.clone()) {
                worklist.push_back(q);
            }
        }
    }

    // ---- Spec extraction (lines 22–29) ----
    let mut specs = BTreeMap::new();
    let mut confidence = BTreeMap::new();
    for (id, summary) in &summaries {
        let (spec, conf) = summary.extract_spec_with_confidence(cfg.threshold);
        specs.insert(id.clone(), spec);
        confidence.insert(id.clone(), conf);
    }

    InferResult { specs, summaries, confidence, solves, elapsed: start.elapsed(), pre_annotated }
}

/// The INIT summary: spec-derived high/low priors where an annotation
/// exists, uniform elsewhere.
fn initial_summary(ctx: ModelCtx<'_>, mu: &MethodUnit, cfg: &InferConfig) -> MethodSummary {
    let slot_for = |ty: &str, atom: Option<&spec_lang::PermAtom>| -> SlotProbs {
        let mut slot = SlotProbs::uniform(ctx.states_of(Some(ty)));
        if let Some(atom) = atom {
            for k in PermissionKind::ALL {
                slot.set_kind(k, if k == atom.kind { cfg.p_spec_high } else { cfg.p_spec_low });
            }
            let st = atom.effective_state();
            let names: Vec<String> = slot.states.keys().cloned().collect();
            for name in names {
                let p = if name == st { cfg.p_spec_high } else { cfg.p_spec_low };
                slot.states.insert(name, p);
            }
        }
        slot
    };
    let params = mu
        .pfg
        .params
        .iter()
        .map(|p| {
            let target =
                if p.name == "this" { SpecTarget::This } else { SpecTarget::Param(p.name.clone()) };
            (
                p.name.clone(),
                slot_for(&p.type_name, mu.spec.requires.for_target(&target)),
                slot_for(&p.type_name, mu.spec.ensures.for_target(&target)),
            )
        })
        .collect();
    let result = mu
        .pfg
        .result
        .as_ref()
        .map(|(ty, _)| slot_for(ty, mu.spec.ensures.for_target(&SpecTarget::Result)));
    MethodSummary { params, result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::standard_api;

    fn run(src: &str) -> InferResult {
        let unit = parse(src).unwrap();
        let api = standard_api();
        infer(&[unit], &api, &InferConfig::default())
    }

    const FIG3: &str = r#"
        class Row {
            Collection<Integer> entries;
            Iterator<Integer> createColIter() {
                return entries.iterator();
            }
            void add(int val) { }
        }
        class App {
            Row copy(Row original) {
                Iterator<Integer> iter = original.createColIter();
                Row result = new Row();
                while (iter.hasNext()) {
                    result.add(iter.next());
                }
                return result;
            }
            @Test
            void testParseCSV() {
                Row r1 = parseCSVRow("1,2,3,4");
                Row r2 = parseCSVRow("4,6,7,8");
                int sum = r1.createColIter().next() + r2.createColIter().next();
                assert sum != 5;
            }
            static Row parseCSVRow(String text) { return new Row(); }
        }
    "#;

    #[test]
    fn figure3_createcoliter_resolves_conflict_to_alive_unique() {
        // The paper's running example (§1): testParseCSV calls next()
        // directly (wants HASNEXT), while copy and the iterator() spec say
        // ALIVE. Evidence for ALIVE outweighs HASNEXT, and H3 picks unique.
        let result = run(FIG3);
        let id = MethodId::new("Row", "createColIter");
        let spec = &result.specs[&id];
        let atom = spec.ensures.for_target(&SpecTarget::Result).expect("result spec inferred");
        assert_eq!(atom.kind, PermissionKind::Unique, "H3: create* returns unique");
        let state = atom.state.as_deref().unwrap_or(spec_lang::ALIVE);
        assert_eq!(state, spec_lang::ALIVE, "majority evidence selects ALIVE over HASNEXT");
    }

    #[test]
    fn figure3_summary_shows_conflicting_evidence() {
        let result = run(FIG3);
        let id = MethodId::new("Row", "createColIter");
        let summary = &result.summaries[&id];
        let res = summary.result.as_ref().unwrap();
        // ALIVE beats HASNEXT, but HASNEXT is not certainly-false: the
        // conflicting site left a trace.
        assert!(res.state("ALIVE") > res.state("HASNEXT"));
    }

    #[test]
    fn drain_helper_infers_full_iterator_param() {
        let result = run(r#"
            class App {
                void drain(Iterator<Integer> it) {
                    while (it.hasNext()) { it.next(); }
                }
            }
        "#);
        let spec = &result.specs[&MethodId::new("App", "drain")];
        let atom = spec.requires.for_target(&SpecTarget::Param("it".into()));
        let atom = atom.expect("it gets a precondition");
        assert!(atom.kind.allows_write(), "next() needs a writing permission, got {}", atom.kind);
    }

    #[test]
    fn summaries_flow_through_wrappers() {
        // level2 wraps level1 which calls next(); the requirement should
        // propagate up the call chain through summaries.
        let result = run(r#"
            class App {
                void level1(Iterator<Integer> it) { it.next(); }
                void level2(Iterator<Integer> it) { level1(it); }
            }
        "#);
        let l2 = &result.specs[&MethodId::new("App", "level2")];
        let atom = l2.requires.for_target(&SpecTarget::Param("it".into()));
        assert!(atom.is_some(), "level2 should inherit level1's requirement: {l2:?}");
        let s = &result.summaries[&MethodId::new("App", "level2")];
        let (pre, _) = s.param("it").unwrap();
        assert!(
            pre.state("HASNEXT") > 0.5,
            "HASNEXT requirement propagates: {:.3}",
            pre.state("HASNEXT")
        );
    }

    #[test]
    fn pre_annotated_methods_are_recorded() {
        let result = run(r#"
            class App {
                @Perm(requires = "pure(this)", ensures = "pure(this)")
                void annotated() { }
                void plain() { }
            }
        "#);
        assert!(result.pre_annotated.contains(&MethodId::new("App", "annotated")));
        assert!(!result.pre_annotated.contains(&MethodId::new("App", "plain")));
    }

    #[test]
    fn max_iters_bounds_work() {
        let src = r#"
            class App {
                void a(Iterator<Integer> it) { b(it); }
                void b(Iterator<Integer> it) { c(it); }
                void c(Iterator<Integer> it) { it.next(); }
            }
        "#;
        let unit = parse(src).unwrap();
        let api = standard_api();
        let cheap = infer(
            std::slice::from_ref(&unit),
            &api,
            &InferConfig { max_iters: 3, ..InferConfig::default() },
        );
        assert!(cheap.solves <= 3);
        let full = infer(&[unit], &api, &InferConfig::default());
        assert!(full.solves >= 3, "re-analysis should occur: {}", full.solves);
        // The trade-off the paper describes: more iterations, better specs.
        let a_pre_full =
            full.summaries[&MethodId::new("App", "a")].param("it").unwrap().0.state("HASNEXT");
        assert!(a_pre_full > 0.5, "with enough iterations a() learns HASNEXT: {a_pre_full:.3}");
    }

    #[test]
    fn states_annotation_merges_into_registry() {
        let unit = parse(r#"@States("OPEN, SHUT") class Door { void m() { } }"#).unwrap();
        let api = standard_api();
        let reg = merged_states(&[unit], &api);
        let space = reg.get("Door").expect("Door space registered");
        assert!(space.contains("OPEN"));
        assert!(space.contains("SHUT"));
        // API spaces survive the merge.
        assert!(reg.get("Iterator").is_some());
    }

    #[test]
    fn branch_sensitivity_extension_sees_through_state_tests() {
        // The paper's fourth-warning scenario (§4.2): provably HASNEXT on
        // return, but only via branch reasoning. ANEK proper infers ALIVE;
        // the future-work extension infers HASNEXT.
        let src = r#"class Registry {
            Collection<Integer> items;
            Iterator<Integer> createReadyIter() {
                Iterator<Integer> it = items.iterator();
                if (!it.hasNext()) {
                    throw new RuntimeException("empty");
                }
                return it;
            }
        }"#;
        let unit = parse(src).unwrap();
        let api = standard_api();
        let id = MethodId::new("Registry", "createReadyIter");

        let plain = infer(std::slice::from_ref(&unit), &api, &InferConfig::default());
        let plain_atom = plain.specs[&id].ensures.for_target(&SpecTarget::Result).cloned().unwrap();
        assert_eq!(plain_atom.kind, PermissionKind::Unique);
        assert_eq!(plain_atom.state.as_deref().unwrap_or(spec_lang::ALIVE), spec_lang::ALIVE);

        let ext_cfg = InferConfig { branch_sensitive: true, ..InferConfig::default() };
        let ext = infer(&[unit], &api, &ext_cfg);
        let ext_atom = ext.specs[&id].ensures.for_target(&SpecTarget::Result).cloned().unwrap();
        assert_eq!(ext_atom.kind, PermissionKind::Unique);
        assert_eq!(
            ext_atom.state.as_deref(),
            Some("HASNEXT"),
            "the extension proves HASNEXT through the test"
        );
    }

    #[test]
    fn elapsed_and_solves_populated() {
        let result = run("class App { void m() { } }");
        assert!(result.solves >= 1);
        assert!(result.elapsed.as_nanos() > 0);
    }
}
