//! The "Anek Logical" baseline (paper §4.2, Table 2 last row).
//!
//! Traditional specification inference treats the constraint system as
//! *hard*: every logical rule must hold, heuristics are dropped, and the
//! whole program is solved at once. The paper's experiment found this mode
//! ran out of memory on PMD before reaching a fixed point ("DNF"), and the
//! related SAT-based approach (Dietl) fails outright on buggy programs
//! because the constraints become unsatisfiable.
//!
//! This module reproduces that baseline honestly: the same constraint
//! *shapes* as the probabilistic mode, encoded as hard boolean constraints
//! over every method's node/edge variables plus cross-method `PARAMARG`
//! equalities, solved by chronological backtracking with a work budget.

use crate::config::InferConfig;
use crate::constraints::SlotVars;
use crate::model::ModelCtx;
use analysis::pfg::{CallRole, Pfg, PfgNodeKind};
use analysis::types::{Callee, MethodId, ProgramIndex};
use factor_graph::{Factor, FactorGraph, VarId};
use java_syntax::ast::CompilationUnit;
use spec_lang::{spec_of_method, ApiRegistry, PermissionKind, SpecTarget};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Outcome of a logical-mode run.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOutcome {
    /// A satisfying assignment was found; a specification can be read off.
    Satisfiable {
        /// `true` assignments per variable.
        assignment: Vec<bool>,
    },
    /// The hard constraints contradict each other (e.g. the program has a
    /// protocol bug) — no specification can be produced.
    Unsatisfiable,
    /// The work budget was exhausted before an answer ("DNF" in Table 2).
    DidNotFinish,
}

/// Result of [`solve_logical`].
#[derive(Debug, Clone)]
pub struct LogicalResult {
    /// What happened.
    pub outcome: LogicalOutcome,
    /// Number of variables in the system.
    pub variables: usize,
    /// Number of hard constraints.
    pub constraints: usize,
    /// Search steps spent (assignments tried).
    pub steps: u64,
    /// Peak memory of the decision stack (domain snapshots), in bytes — the
    /// paper's logical run "ran out of memory before a fixed point was
    /// reached" on a 2 GB machine, so memory is a first-class budget here.
    pub peak_memory: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The paper's machine had 2 GB of RAM (§4); the decision stack of the
/// whole-program search is capped accordingly.
pub const MEMORY_LIMIT_BYTES: u64 = 2_000_000_000;

/// Runs the logical (deterministic, whole-program, heuristic-free) baseline.
///
/// `budget` bounds the number of search steps; exceeding it yields
/// [`LogicalOutcome::DidNotFinish`].
pub fn solve_logical(
    units: &[CompilationUnit],
    api: &ApiRegistry,
    cfg: &InferConfig,
    budget: u64,
) -> LogicalResult {
    let start = Instant::now();
    let index = ProgramIndex::build(units.iter());
    let states = crate::infer::merged_states(units, api);
    let ctx = ModelCtx { index: &index, api, states: &states };

    // ---- Variables for every node and edge of every method ----
    let mut g = FactorGraph::new();
    let mut hard: Vec<Factor> = Vec::new();
    let mut prefer_true: Vec<bool> = Vec::new();
    let mut pfgs: Vec<(MethodId, Pfg, Vec<SlotVars>, Vec<SlotVars>)> = Vec::new();

    // Helper mirrors of slot allocation that also track preferred values.
    let alloc = |g: &mut FactorGraph, prefer: &mut Vec<bool>, label: &str, states: &[String]| {
        let sv = SlotVars::alloc(g, label, states);
        // default preference: pure + ALIVE true, everything else false.
        while prefer.len() < g.num_vars() {
            prefer.push(false);
        }
        prefer[sv.kind(PermissionKind::Pure).0 as usize] = true;
        if let Some(v) = sv.state(spec_lang::ALIVE) {
            prefer[v.0 as usize] = true;
        }
        sv
    };

    for unit in units {
        for t in &unit.types {
            for m in t.methods() {
                if m.body.is_none() {
                    continue;
                }
                let id = MethodId::new(&t.name, &m.name);
                let pfg = Pfg::build(&index, api, &t.name, m);
                let node_vars: Vec<SlotVars> = pfg
                    .nodes
                    .iter()
                    .map(|n| {
                        let st = ctx.states_of(n.type_name.as_deref());
                        alloc(&mut g, &mut prefer_true, &format!("{id}:n{}", n.id), &st)
                    })
                    .collect();
                let edge_vars: Vec<SlotVars> = pfg
                    .edges
                    .iter()
                    .enumerate()
                    .map(|(i, (a, _))| {
                        let st = ctx.states_of(pfg.nodes[*a].type_name.as_deref());
                        alloc(&mut g, &mut prefer_true, &format!("{id}:e{i}"), &st)
                    })
                    .collect();
                pfgs.push((id, pfg, node_vars, edge_vars));
            }
        }
    }

    // ---- Hard structural constraints (L1–L3 + exactly-one) ----
    for (id, pfg, node_vars, edge_vars) in &pfgs {
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); pfg.nodes.len()];
        let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); pfg.nodes.len()];
        for (i, (a, b)) in pfg.edges.iter().enumerate() {
            out_edges[*a].push(i);
            in_edges[*b].push(i);
        }
        for slot in node_vars.iter().chain(edge_vars.iter()) {
            hard.push(Factor::from_fn(slot.kinds.to_vec(), |a| {
                if a.iter().filter(|b| **b).count() == 1 {
                    1.0
                } else {
                    0.0
                }
            }));
            if slot.states.len() > 1 {
                let sv: Vec<VarId> = slot.states.iter().map(|(_, v)| *v).collect();
                hard.push(Factor::from_fn(sv, |a| {
                    if a.iter().filter(|b| **b).count() == 1 {
                        1.0
                    } else {
                        0.0
                    }
                }));
            }
        }
        for n in &pfg.nodes {
            // L1 hard.
            let outs = &out_edges[n.id];
            if pfg.is_split(n.id) && outs.len() > 1 {
                for &i in outs {
                    let mut scope: Vec<VarId> = node_vars[n.id].kinds.to_vec();
                    scope.extend(edge_vars[i].kinds.iter().copied());
                    hard.push(Factor::from_fn(scope, |a| {
                        for (ki, nk) in PermissionKind::ALL.iter().enumerate() {
                            if !a[ki] {
                                continue;
                            }
                            let ok = PermissionKind::ALL
                                .iter()
                                .enumerate()
                                .any(|(kj, ek)| a[5 + kj] && nk.can_weaken_to(*ek));
                            if !ok {
                                return 0.0;
                            }
                        }
                        1.0
                    }));
                    for (name, v) in &node_vars[n.id].states {
                        if let Some(ev) = edge_vars[i].state(name) {
                            hard.push(eq_factor(*v, ev));
                        }
                    }
                }
                for (x, &i) in outs.iter().enumerate() {
                    for &j in outs.iter().skip(x + 1) {
                        let scope = vec![
                            edge_vars[i].kind(PermissionKind::Unique),
                            edge_vars[i].kind(PermissionKind::Full),
                            edge_vars[j].kind(PermissionKind::Unique),
                            edge_vars[j].kind(PermissionKind::Full),
                        ];
                        hard.push(Factor::from_fn(scope, |a| {
                            if (a[0] || a[1]) && (a[2] || a[3]) {
                                0.0
                            } else {
                                1.0
                            }
                        }));
                    }
                }
            } else {
                for &i in outs {
                    for (a, b) in pair_vars(&node_vars[n.id], &edge_vars[i]) {
                        hard.push(eq_factor(a, b));
                    }
                }
            }
            // L2 hard: the node equals one of its incoming edges, realized
            // with hard selector variables (kinds and states select
            // independently, mirroring the probabilistic encoding).
            let ins = &in_edges[n.id];
            if ins.len() == 1 {
                for (a, b) in pair_vars(&node_vars[n.id], &edge_vars[ins[0]]) {
                    hard.push(eq_factor(a, b));
                }
            } else if ins.len() > 1 {
                let mk_selectors = |g: &mut FactorGraph, hard: &mut Vec<Factor>| -> Vec<VarId> {
                    let base = g.num_vars();
                    let sels: Vec<VarId> =
                        (0..ins.len()).map(|i| g.add_var(format!("hsel{base}_{i}"))).collect();
                    hard.push(Factor::from_fn(sels.clone(), |a| {
                        if a.iter().filter(|b| **b).count() == 1 {
                            1.0
                        } else {
                            0.0
                        }
                    }));
                    sels
                };
                let kind_sel = mk_selectors(&mut g, &mut hard);
                for (si, &ei) in ins.iter().enumerate() {
                    for (a, b) in node_vars[n.id].kinds.iter().zip(edge_vars[ei].kinds.iter()) {
                        hard.push(Factor::from_fn(vec![kind_sel[si], *a, *b], |v| {
                            if !v[0] || v[1] == v[2] {
                                1.0
                            } else {
                                0.0
                            }
                        }));
                    }
                }
                // Merge-after-call: the state comes from the callee's post
                // edge (mirroring the probabilistic model); otherwise a
                // state selector mirrors the kind selector.
                let post_edges: Vec<usize> = ins
                    .iter()
                    .copied()
                    .filter(|&ei| {
                        matches!(pfg.nodes[pfg.edges[ei].0].kind, PfgNodeKind::CallPost { .. })
                    })
                    .collect();
                let shared: Vec<String> = node_vars[n.id]
                    .states
                    .iter()
                    .map(|(s, _)| s.clone())
                    .filter(|s| ins.iter().all(|&ei| edge_vars[ei].state(s).is_some()))
                    .collect();
                if !shared.is_empty() {
                    if post_edges.len() == 1 {
                        for s in &shared {
                            let a = node_vars[n.id].state(s).expect("shared");
                            let b = edge_vars[post_edges[0]].state(s).expect("shared");
                            hard.push(eq_factor(a, b));
                        }
                    } else {
                        let state_sel = mk_selectors(&mut g, &mut hard);
                        for (si, &ei) in ins.iter().enumerate() {
                            for s in &shared {
                                let a = node_vars[n.id].state(s).expect("shared");
                                let b = edge_vars[ei].state(s).expect("shared");
                                hard.push(Factor::from_fn(vec![state_sel[si], a, b], |v| {
                                    if !v[0] || v[1] == v[2] {
                                        1.0
                                    } else {
                                        0.0
                                    }
                                }));
                            }
                        }
                    }
                }
            }
            // L3 hard.
            if let PfgNodeKind::FieldWrite { .. } = &n.kind {
                if let Some(recv) = n.receiver_link {
                    let scope = vec![
                        node_vars[recv].kind(PermissionKind::Immutable),
                        node_vars[recv].kind(PermissionKind::Pure),
                    ];
                    hard.push(Factor::from_fn(scope, |a| if a[0] || a[1] { 0.0 } else { 1.0 }));
                }
            }
            // API call-site facts are hard unit clauses.
            if let PfgNodeKind::CallPre {
                callee: Callee::Api { type_name, method }, role, ..
            }
            | PfgNodeKind::CallPost {
                callee: Callee::Api { type_name, method }, role, ..
            } = &n.kind
            {
                if *role == CallRole::Receiver {
                    if let Some(api_m) = api.get(type_name, method) {
                        let is_pre = matches!(n.kind, PfgNodeKind::CallPre { .. });
                        let clause =
                            if is_pre { &api_m.spec.requires } else { &api_m.spec.ensures };
                        if let Some(atom) = clause.for_target(&SpecTarget::This) {
                            push_unit_atoms(&mut hard, &node_vars[n.id], atom);
                        }
                    }
                }
            }
            if let PfgNodeKind::CallResult { callee: Callee::Api { type_name, method }, .. } =
                &n.kind
            {
                if let Some(api_m) = api.get(type_name, method) {
                    if let Some(atom) = api_m.spec.ensures.for_target(&SpecTarget::Result) {
                        push_unit_atoms(&mut hard, &node_vars[n.id], atom);
                    }
                }
            }
        }
        let _ = id;
    }

    // ---- PARAMARG: cross-method equalities for program callees ----
    let by_id: BTreeMap<&MethodId, usize> =
        pfgs.iter().enumerate().map(|(i, (id, ..))| (id, i)).collect();
    let mut cross: Vec<(VarId, VarId)> = Vec::new();
    for (_, pfg, node_vars, _) in &pfgs {
        for n in &pfg.nodes {
            let (callee, role, is_pre, is_result) = match &n.kind {
                PfgNodeKind::CallPre { callee: Callee::Program(c), role, .. } => {
                    (c, Some(*role), true, false)
                }
                PfgNodeKind::CallPost { callee: Callee::Program(c), role, .. } => {
                    (c, Some(*role), false, false)
                }
                PfgNodeKind::CallResult { callee: Callee::Program(c), .. } => {
                    (c, None, false, true)
                }
                _ => continue,
            };
            let Some(&ci) = by_id.get(callee) else { continue };
            let (_, cpfg, cnode_vars, _) = &pfgs[ci];
            let target_node = if is_result {
                cpfg.result.as_ref().map(|(_, post)| *post)
            } else {
                let pname = match role.expect("non-result role") {
                    CallRole::Receiver => "this".to_string(),
                    CallRole::Arg(i) => match index.method(callee).and_then(|m| m.params.get(i)) {
                        Some((n, _)) => n.clone(),
                        None => continue,
                    },
                };
                cpfg.params.iter().find(|p| p.name == pname).map(|p| {
                    if is_pre {
                        p.pre
                    } else {
                        p.post
                    }
                })
            };
            let Some(tn) = target_node else { continue };
            for (a, b) in pair_vars(&node_vars[n.id], &cnode_vars[tn]) {
                cross.push((a, b));
            }
        }
    }
    for (a, b) in cross {
        hard.push(eq_factor(a, b));
    }

    // ---- Own annotations as hard facts ----
    for unit in units {
        for t in &unit.types {
            for m in t.methods() {
                if m.body.is_none() {
                    continue;
                }
                let id = MethodId::new(&t.name, &m.name);
                let Some(&i) = by_id.get(&id) else { continue };
                let spec = spec_of_method(m).unwrap_or_default();
                let (_, pfg, node_vars, _) = &pfgs[i];
                for p in &pfg.params {
                    let target = if p.name == "this" {
                        SpecTarget::This
                    } else {
                        SpecTarget::Param(p.name.clone())
                    };
                    if let Some(atom) = spec.requires.for_target(&target) {
                        push_unit_atoms(&mut hard, &node_vars[p.pre], atom);
                    }
                    if let Some(atom) = spec.ensures.for_target(&target) {
                        push_unit_atoms(&mut hard, &node_vars[p.post], atom);
                    }
                }
            }
        }
    }

    let variables = g.num_vars();
    let constraints = hard.len();

    // ---- Chronological backtracking with budget ----
    let (outcome, peak_memory) = backtrack(variables, &hard, &prefer_true, budget);
    let _ = cfg;
    LogicalResult {
        outcome,
        variables,
        constraints,
        steps: STEPS.with(std::cell::Cell::get),
        peak_memory,
        elapsed: start.elapsed(),
    }
}

fn pair_vars(a: &SlotVars, b: &SlotVars) -> Vec<(VarId, VarId)> {
    let mut pairs: Vec<(VarId, VarId)> =
        a.kinds.iter().copied().zip(b.kinds.iter().copied()).collect();
    for (name, v) in &a.states {
        if let Some(o) = b.state(name) {
            pairs.push((*v, o));
        }
    }
    pairs
}

fn eq_factor(a: VarId, b: VarId) -> Factor {
    Factor::from_fn(vec![a, b], |v| if v[0] == v[1] { 1.0 } else { 0.0 })
}

fn push_unit_atoms(hard: &mut Vec<Factor>, slot: &SlotVars, atom: &spec_lang::PermAtom) {
    for k in PermissionKind::ALL {
        let want = k == atom.kind;
        hard.push(Factor::from_fn(
            vec![slot.kind(k)],
            move |a| {
                if a[0] == want {
                    1.0
                } else {
                    0.0
                }
            },
        ));
    }
    // `in ALIVE` is the root of the state hierarchy and constrains nothing;
    // a non-root state forbids every state that does not refine it (flat
    // spaces: everything except the state itself).
    let state = atom.effective_state().to_string();
    if state == spec_lang::ALIVE {
        return;
    }
    for (name, v) in &slot.states {
        if *name != state {
            hard.push(Factor::from_fn(vec![*v], |a| if a[0] { 0.0 } else { 1.0 }));
        }
    }
}

thread_local! {
    static STEPS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Domain bitmask: bit 0 = `false` allowed, bit 1 = `true` allowed.
type Domain = u8;
const D_FALSE: Domain = 0b01;
const D_TRUE: Domain = 0b10;
const D_BOTH: Domain = 0b11;

/// Generalized-arc-consistency + backtracking solver over tabular hard
/// constraints. `budget` bounds the number of factor revisions — exceeding
/// it reports [`LogicalOutcome::DidNotFinish`], which is how the Table 2
/// "Anek Logical: DNF" row arises at scale.
fn backtrack(
    n_vars: usize,
    hard: &[Factor],
    prefer_true: &[bool],
    budget: u64,
) -> (LogicalOutcome, u64) {
    STEPS.with(|s| s.set(0));
    if n_vars == 0 {
        return (LogicalOutcome::Satisfiable { assignment: Vec::new() }, 0);
    }
    let mut peak_memory: u64 = 0;
    // var -> factors mentioning it.
    let mut factors_of: Vec<Vec<usize>> = vec![Vec::new(); n_vars];
    for (i, f) in hard.iter().enumerate() {
        for v in f.scope() {
            factors_of[v.0 as usize].push(i);
        }
    }
    let mut steps: u64 = 0;

    /// Prunes unsupported values of every variable in `f`'s scope.
    /// Returns pruned vars, or `None` on domain wipeout.
    fn revise(f: &Factor, domains: &mut [Domain], steps: &mut u64) -> Option<Vec<usize>> {
        *steps += 1;
        let scope = f.scope();
        let k = scope.len();
        // support[j] collects which values of scope[j] appear in some
        // domain-consistent satisfying row.
        let mut support: Vec<Domain> = vec![0; k];
        'rows: for (idx, &pot) in f.table().iter().enumerate() {
            if pot == 0.0 {
                continue;
            }
            for (j, v) in scope.iter().enumerate() {
                let val = idx & (1 << j) != 0;
                let need = if val { D_TRUE } else { D_FALSE };
                if domains[v.0 as usize] & need == 0 {
                    continue 'rows;
                }
            }
            for (j, _) in scope.iter().enumerate() {
                let val = idx & (1 << j) != 0;
                support[j] |= if val { D_TRUE } else { D_FALSE };
            }
        }
        let mut pruned = Vec::new();
        for (j, v) in scope.iter().enumerate() {
            let vi = v.0 as usize;
            let new = domains[vi] & support[j];
            if new == 0 {
                return None;
            }
            if new != domains[vi] {
                domains[vi] = new;
                pruned.push(vi);
            }
        }
        Some(pruned)
    }

    /// Runs GAC to fixpoint starting from `seed` factors. Returns false on
    /// wipeout or budget exhaustion (distinguished via `steps > budget`).
    fn propagate(
        seeds: &[usize],
        hard: &[Factor],
        factors_of: &[Vec<usize>],
        domains: &mut [Domain],
        steps: &mut u64,
        budget: u64,
    ) -> bool {
        let mut queue: std::collections::VecDeque<usize> = seeds.iter().copied().collect();
        let mut queued: Vec<bool> = vec![false; hard.len()];
        for &s in seeds {
            queued[s] = true;
        }
        while let Some(fi) = queue.pop_front() {
            queued[fi] = false;
            if *steps > budget {
                return false;
            }
            match revise(&hard[fi], domains, steps) {
                None => return false,
                Some(pruned) => {
                    for v in pruned {
                        for &g in &factors_of[v] {
                            if g != fi && !queued[g] {
                                queued[g] = true;
                                queue.push_back(g);
                            }
                        }
                    }
                }
            }
        }
        true
    }

    let mut domains: Vec<Domain> = vec![D_BOTH; n_vars];
    // Initial propagation over all factors (handles unit clauses and their
    // consequences through the equality chains).
    let all: Vec<usize> = (0..hard.len()).collect();
    if !propagate(&all, hard, &factors_of, &mut domains, &mut steps, budget) {
        STEPS.with(|s| s.set(steps));
        let outcome = if steps > budget {
            LogicalOutcome::DidNotFinish
        } else {
            LogicalOutcome::Unsatisfiable
        };
        return (outcome, peak_memory);
    }

    // Depth-first search with GAC maintenance; domains snapshotted per
    // decision level.
    struct Frame {
        var: usize,
        saved: Vec<Domain>,
        tried_other: bool,
    }
    let mut stack: Vec<Frame> = Vec::new();
    loop {
        let stack_bytes = (stack.len() as u64 + 1) * n_vars as u64;
        peak_memory = peak_memory.max(stack_bytes);
        if steps > budget || stack_bytes > MEMORY_LIMIT_BYTES {
            STEPS.with(|s| s.set(steps));
            return (LogicalOutcome::DidNotFinish, peak_memory);
        }
        // Next undecided variable.
        let var = domains.iter().position(|d| *d == D_BOTH);
        let Some(var) = var else {
            STEPS.with(|s| s.set(steps));
            let assignment = domains.iter().map(|d| *d == D_TRUE).collect();
            return (LogicalOutcome::Satisfiable { assignment }, peak_memory);
        };
        let prefer = prefer_true.get(var).copied().unwrap_or(false);
        let value = if prefer { D_TRUE } else { D_FALSE };
        let saved = domains.clone();
        domains[var] = value;
        let ok = propagate(&factors_of[var], hard, &factors_of, &mut domains, &mut steps, budget);
        if ok {
            stack.push(Frame { var, saved, tried_other: false });
            continue;
        }
        if steps > budget {
            STEPS.with(|s| s.set(steps));
            return (LogicalOutcome::DidNotFinish, peak_memory);
        }
        // First value failed: try the other at this level.
        domains = saved.clone();
        domains[var] = if prefer { D_FALSE } else { D_TRUE };
        let ok = propagate(&factors_of[var], hard, &factors_of, &mut domains, &mut steps, budget);
        if ok {
            stack.push(Frame { var, saved, tried_other: true });
            continue;
        }
        if steps > budget {
            STEPS.with(|s| s.set(steps));
            return (LogicalOutcome::DidNotFinish, peak_memory);
        }
        // Both values failed: backtrack.
        loop {
            let Some(frame) = stack.pop() else {
                STEPS.with(|s| s.set(steps));
                return (LogicalOutcome::Unsatisfiable, peak_memory);
            };
            if frame.tried_other {
                continue;
            }
            let prefer = prefer_true.get(frame.var).copied().unwrap_or(false);
            domains = frame.saved.clone();
            domains[frame.var] = if prefer { D_FALSE } else { D_TRUE };
            let ok = propagate(
                &factors_of[frame.var],
                hard,
                &factors_of,
                &mut domains,
                &mut steps,
                budget,
            );
            if steps > budget {
                STEPS.with(|s| s.set(steps));
                return (LogicalOutcome::DidNotFinish, peak_memory);
            }
            if ok {
                stack.push(Frame { var: frame.var, saved: frame.saved, tried_other: true });
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::standard_api;

    fn run(src: &str, budget: u64) -> LogicalResult {
        let unit = parse(src).unwrap();
        let api = standard_api();
        solve_logical(&[unit], &api, &InferConfig::default(), budget)
    }

    #[test]
    fn tiny_clean_program_is_satisfiable() {
        let r = run("class App { void m(Row r) { } } class Row { }", 2_000_000);
        assert!(
            matches!(r.outcome, LogicalOutcome::Satisfiable { .. }),
            "outcome: {:?} with {} vars / {} constraints",
            r.outcome,
            r.variables,
            r.constraints
        );
    }

    #[test]
    fn correct_iterator_use_is_satisfiable() {
        let r = run(
            r#"class App {
                void drain(Iterator<Integer> it) {
                    while (it.hasNext()) { it.next(); }
                }
            }"#,
            20_000_000,
        );
        assert!(
            matches!(r.outcome, LogicalOutcome::Satisfiable { .. }),
            "outcome: {:?}",
            r.outcome
        );
    }

    #[test]
    fn tight_budget_reports_dnf() {
        let r = run(
            r#"class App {
                void drain(Iterator<Integer> it) {
                    while (it.hasNext()) { it.next(); }
                }
            }"#,
            50,
        );
        assert_eq!(r.outcome, LogicalOutcome::DidNotFinish);
        assert!(r.steps > 50);
    }

    #[test]
    fn variables_scale_with_program() {
        let small = run("class A { void m() { } }", 1000);
        let large = run(
            r#"class A {
                void m(Iterator<Integer> a, Iterator<Integer> b) {
                    a.next(); b.next(); a.hasNext(); b.hasNext();
                }
            }"#,
            1000,
        );
        assert!(large.variables > small.variables);
        assert!(large.constraints > small.constraints);
    }
}
