//! # anek-core
//!
//! The primary contribution of the reproduced paper (Beckman & Nori,
//! *Probabilistic, Modular and Scalable Inference of Typestate
//! Specifications*, PLDI 2011): probabilistic inference of access-permission
//! specifications.
//!
//! * [`constraints`] — the logical (L1–L3) and heuristic (H1–H5) soft
//!   constraints of §3.3, emitted over permission-kind and abstract-state
//!   Bernoulli variables.
//! * [`model`] — per-method factor-graph models (`𝒢m` of Definition 1) with
//!   Figure 8-style priors and `PARAMARG` call-site bindings.
//! * [`infer()`](infer::infer) — the modular `ANEK-INFER` worklist algorithm of Figure 9,
//!   built on probabilistic method summaries.
//! * [`logical`] — the deterministic whole-program baseline ("Anek Logical",
//!   Table 2) that hard constraints, no heuristics, and a work budget.
//! * [`compare`] — the Table 4 specification-quality categorization.
//!
//! ## Example
//!
//! ```
//! use anek_core::{infer, InferConfig};
//! use spec_lang::standard_api;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = java_syntax::parse(
//!     "class App { void drain(Iterator<Integer> it) { while (it.hasNext()) { it.next(); } } }",
//! )?;
//! let api = standard_api();
//! let result = infer(&[unit], &api, &InferConfig::default());
//! let spec = &result.specs[&analysis::MethodId::new("App", "drain")];
//! assert!(!spec.requires.is_empty()); // a precondition for `it` was inferred
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod compare;
pub mod config;
pub mod constraints;
pub mod global;
pub mod infer;
pub mod logical;
pub mod memo;
pub mod model;
pub mod outcome;
pub mod summary;

pub use compare::{compare_specs, DiffTally, SpecDiff};
pub use config::{FaultInjection, InferConfig};
pub use global::infer_global;
pub use infer::{infer, infer_with_store, merged_states, InferResult};
pub use logical::{solve_logical, LogicalOutcome, LogicalResult};
pub use memo::{CacheKey, InferCache, KeyHasher, SolvedRecord};
pub use model::{CallerEvidence, MethodModel, MethodSkeleton, ModelCtx};
pub use outcome::{render_outcome_table, DegradeReason, InferError, MethodOutcome};
pub use summary::{MethodSummary, SlotProbs};
