//! Cross-schedule agreement: the residual schedule is a performance choice,
//! never a semantic one. The strong form of that claim — identical marginals
//! everywhere — does not hold on this corpus, because the damped Jacobi
//! sweep fails to *converge* on most loopy iterator models (it oscillates
//! until `max_iterations` stops it; `Spreadsheet.copy` is still unconverged
//! after 50k sweeps at tolerance 1e-10), and a non-converged oscillation
//! point is not comparable to a fixed point. What genuinely holds, and what
//! this suite pins, is:
//!
//! 1. The residual schedule converges on **every** model in the corpus —
//!    including all the loopy ones the sweep cannot settle.
//! 2. Wherever **both** schedules converge, their marginals agree within a
//!    tight band (observed worst case 2e-4; asserted at 1e-3).
//! 3. Whole-corpus inference produces the same method sets and closely
//!    agreeing annotation volume — the historical per-edge residual bug
//!    manifested as 3120 phantom annotations vs Sweep's 1054 at paper
//!    scale, and this gate would have caught it.
//! 4. The residual schedule never spends more message updates than the
//!    sweep it replaces.
//!
//! Exact Figure 3 reproducibility per schedule is pinned separately, to the
//! last ulp, by the golden fixtures in `golden_figure3.rs`.

use analysis::pfg::Pfg;
use analysis::types::ProgramIndex;
use anek_core::{infer, merged_states, InferConfig, InferResult, MethodModel, ModelCtx};
use factor_graph::BpSchedule;
use spec_lang::{spec_of_method, standard_api};
use std::collections::BTreeMap;

/// Band for marginals of models on which *both* schedules report
/// convergence: both are then within `bp.tolerance` of the same fixed
/// point, so any gap is tolerance slack, not disagreement.
const CONVERGED_AGREEMENT: f64 = 1e-3;

/// Solves every method model in `unit` in isolation (no summaries) under
/// both schedules and checks the convergence/agreement contract. Returns
/// `(methods_checked, both_converged)` so callers can assert non-vacuity.
fn check_models(name: &str, unit: &java_syntax::ast::CompilationUnit) -> (usize, usize) {
    let index = ProgramIndex::build([unit]);
    let api = standard_api();
    let states = merged_states(std::slice::from_ref(unit), &api);
    let ctx = ModelCtx { index: &index, api: &api, states: &states };
    let empty = BTreeMap::new();
    let (mut checked, mut both) = (0, 0);
    for t in &unit.types {
        for m in t.methods() {
            if m.body.is_none() {
                continue;
            }
            let mut runs = Vec::new();
            for schedule in [BpSchedule::Sweep, BpSchedule::Residual] {
                let mut cfg = InferConfig::default();
                cfg.bp.schedule = schedule;
                let pfg = Pfg::build(&index, &api, &t.name, m);
                let spec = spec_of_method(m).unwrap_or_default();
                let model = MethodModel::build(ctx, pfg, &spec, m.is_constructor(), &empty, &cfg);
                let r = model.graph.solve(&cfg.bp);
                runs.push((r.as_slice().to_vec(), r.converged));
            }
            let (sweep, residual) = (&runs[0], &runs[1]);
            checked += 1;
            assert!(
                residual.1,
                "{name}: {}.{}: residual schedule failed to converge",
                t.name, m.name
            );
            if sweep.1 {
                both += 1;
                let delta = sweep
                    .0
                    .iter()
                    .zip(&residual.0)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0_f64, f64::max);
                assert!(
                    delta <= CONVERGED_AGREEMENT,
                    "{name}: {}.{}: both schedules converged but marginals differ \
                     (max delta {delta:.6})",
                    t.name,
                    m.name
                );
            }
        }
    }
    (checked, both)
}

fn run(units: &[java_syntax::ast::CompilationUnit], schedule: BpSchedule) -> InferResult {
    let mut cfg = InferConfig::default();
    cfg.bp.schedule = schedule;
    infer(units, &standard_api(), &cfg)
}

/// Whole-corpus structural agreement: same methods summarized, and the
/// inferred annotation volume within a third (or two annotations, for tiny
/// cases where one near-threshold atom dominates the ratio).
fn check_corpus_shape(name: &str, sweep: &InferResult, residual: &InferResult) {
    assert_eq!(
        sweep.summaries.keys().collect::<Vec<_>>(),
        residual.summaries.keys().collect::<Vec<_>>(),
        "{name}: schedules summarized different method sets"
    );
    let (sa, ra) = (sweep.annotation_count(), residual.annotation_count());
    let diff = (sa as f64 - ra as f64).abs();
    let spread = diff / (sa.max(ra).max(1) as f64);
    assert!(
        spread <= 0.34 || diff <= 2.0,
        "{name}: annotation volume diverged across schedules: sweep {sa} vs residual {ra}"
    );
}

#[test]
fn residual_converges_and_agrees_where_sweep_converges_on_figure3() {
    let unit = java_syntax::parse(corpus::FIGURE3).unwrap();
    let (checked, _) = check_models("figure3", &unit);
    assert!(checked >= 7, "figure3 should exercise at least 7 method models, got {checked}");
}

#[test]
fn residual_converges_and_agrees_where_sweep_converges_on_the_suite() {
    let (mut checked, mut both) = (0, 0);
    for case in corpus::suite() {
        let (c, b) = check_models(case.name, &case.unit());
        checked += c;
        both += b;
    }
    assert!(checked >= 10, "suite should exercise at least 10 method models, got {checked}");
    // Non-vacuity: the agreement clause must actually fire somewhere.
    assert!(both >= 2, "expected at least 2 models where both schedules converge, got {both}");
}

#[test]
fn schedules_agree_on_corpus_shape_and_residual_never_works_harder() {
    let units = [corpus::figure3_unit()];
    let sweep = run(&units, BpSchedule::Sweep);
    let residual = run(&units, BpSchedule::Residual);
    check_corpus_shape("figure3", &sweep, &residual);

    for case in corpus::suite() {
        let units = [case.unit()];
        let sweep = run(&units, BpSchedule::Sweep);
        let residual = run(&units, BpSchedule::Residual);
        check_corpus_shape(case.name, &sweep, &residual);
        // The residual schedule must not work harder than the sweep it
        // replaces — that asymmetry is its entire reason to exist.
        assert!(
            residual.message_updates <= sweep.message_updates,
            "case {}: residual used more updates ({}) than sweep ({})",
            case.name,
            residual.message_updates,
            sweep.message_updates
        );
    }
}
