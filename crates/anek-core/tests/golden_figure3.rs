//! Golden regression: the Figure 3 per-method models must produce marginals
//! that are **bit-for-bit** identical to the fixture captured from the
//! pre-kernel (nested `Vec<Vec<f64>>`) sweep solver. This pins the flat-arena
//! `CompiledGraph` kernel, the static/dynamic model split and the stamped
//! extras path to the historical numerics exactly — any deviation, down to
//! the last ulp, fails the diff.
//!
//! A second fixture pins the **Residual** schedule the same way: the
//! bucketed batch queue commits in a deterministic order (coarse
//! log-spaced buckets, FIFO within a bucket, whole-bucket batches), so its
//! marginals are just as reproducible — any change to bucket boundaries,
//! batch application order, or the sparse two-valued message path moves
//! these bits and must regenerate the fixture deliberately.
//!
//! Regenerate (only after an *intentional* numeric change) with:
//! `cargo run --release -p bench --bin golden_dump > crates/anek-core/tests/golden/figure3_sweep.txt`
//! `cargo run --release -p bench --bin golden_dump -- residual > crates/anek-core/tests/golden/figure3_residual.txt`

use analysis::pfg::Pfg;
use analysis::types::ProgramIndex;
use anek_core::{merged_states, InferConfig, MethodModel, ModelCtx};
use factor_graph::BpSchedule;
use spec_lang::{spec_of_method, standard_api};
use std::collections::BTreeMap;
use std::fmt::Write as _;

const GOLDEN: &str = include_str!("golden/figure3_sweep.txt");
const GOLDEN_RESIDUAL: &str = include_str!("golden/figure3_residual.txt");

/// Dumps per-method marginal and MAP bits for every Figure 3 model under
/// the given schedule, in the `golden_dump` fixture format.
fn dump_figure3(schedule: BpSchedule) -> String {
    let unit = java_syntax::parse(corpus::FIGURE3).unwrap();
    let index = ProgramIndex::build([&unit]);
    let api = standard_api();
    let states = merged_states(std::slice::from_ref(&unit), &api);
    let ctx = ModelCtx { index: &index, api: &api, states: &states };
    let mut cfg = InferConfig::default();
    cfg.bp.schedule = schedule;
    let empty = BTreeMap::new();

    let mut dump = String::new();
    for t in &unit.types {
        for m in t.methods() {
            if m.body.is_none() {
                continue;
            }
            let pfg = Pfg::build(&index, &api, &t.name, m);
            let spec = spec_of_method(m).unwrap_or_default();
            let model = MethodModel::build(ctx, pfg, &spec, m.is_constructor(), &empty, &cfg);
            let marginals = model.graph.solve(&cfg.bp);
            let map = model.graph.solve_map(&cfg.bp);
            writeln!(dump, "method {}.{} vars {}", t.name, m.name, model.graph.num_vars()).unwrap();
            for (i, (p, q)) in marginals.as_slice().iter().zip(map.as_slice()).enumerate() {
                writeln!(dump, "{i} {:016x} {:016x}", p.to_bits(), q.to_bits()).unwrap();
            }
        }
    }
    dump
}

fn assert_matches_golden(dump: &str, golden: &str) {
    for (ln, (got, want)) in dump.lines().zip(golden.lines()).enumerate() {
        assert_eq!(got, want, "golden mismatch at line {}", ln + 1);
    }
    assert_eq!(
        dump.lines().count(),
        golden.lines().count(),
        "dump and golden fixture have different lengths"
    );
}

#[test]
fn figure3_sweep_marginals_match_pre_kernel_golden_dump() {
    assert_matches_golden(&dump_figure3(BpSchedule::Sweep), GOLDEN);
}

#[test]
fn figure3_residual_marginals_match_golden_dump() {
    assert_matches_golden(&dump_figure3(BpSchedule::Residual), GOLDEN_RESIDUAL);
}
