//! Fault isolation: a poisoned method costs exactly itself.
//!
//! Every fault class the harness can inject — a scripted panic inside the
//! solve, a NaN-poisoned factor table, an oversized model — must be caught
//! at the per-method boundary: the poisoned method reports `Failed` (or
//! `Degraded`), every other method still gets a spec, and the outcome table
//! stays byte-identical for every thread count. A fault in a method no one
//! depends on must not move a single bit of anyone else's spec.

use analysis::types::MethodId;
use anek_core::{infer, FaultInjection, InferConfig, MethodOutcome};
use java_syntax::parse;
use spec_lang::standard_api;

fn id(class: &str, method: &str) -> MethodId {
    MethodId::new(class, method)
}

#[test]
fn injected_panic_fails_only_its_method() {
    let api = standard_api();
    let units = [corpus::figure3_unit()];
    let cfg = InferConfig {
        faults: FaultInjection {
            panic_methods: vec!["Spreadsheet.copy".into()],
            ..FaultInjection::default()
        },
        ..InferConfig::default()
    };
    let result = infer(&units, &api, &cfg);

    match &result.outcomes[&id("Spreadsheet", "copy")] {
        MethodOutcome::Failed { error } => {
            assert!(error.to_string().contains("injected fault"), "{error}");
        }
        other => panic!("poisoned method should be Failed, got {other:?}"),
    }
    assert_eq!(result.failed_count(), 1, "{}", result.outcome_table());
    assert!(!result.fully_ok());

    // Every other method completed and produced a spec as usual.
    for (method, outcome) in &result.outcomes {
        if method != &id("Spreadsheet", "copy") {
            assert!(!outcome.is_failed(), "{method} collaterally failed: {outcome:?}");
        }
    }
    assert!(result.specs.contains_key(&id("Row", "createColIter")));
    assert!(result.specs.contains_key(&id("Spreadsheet", "copyTwice")));
}

#[test]
fn nan_poisoned_model_degrades_instead_of_crashing() {
    let api = standard_api();
    let units = [corpus::figure3_unit()];
    let cfg = InferConfig {
        faults: FaultInjection {
            nan_methods: vec!["Spreadsheet.total".into()],
            ..FaultInjection::default()
        },
        ..InferConfig::default()
    };
    let result = infer(&units, &api, &cfg);

    // The NaN factor is clamped by the kernel guard: the solve completes,
    // the clamp is counted, and the method is degraded — never failed.
    assert_eq!(result.failed_count(), 0, "{}", result.outcome_table());
    assert!(result.numeric_guard_events > 0, "clamp events must surface in the counters");
    match &result.outcomes[&id("Spreadsheet", "total")] {
        MethodOutcome::Degraded { reasons } => {
            assert!(
                reasons.iter().any(|r| r.to_string().starts_with("numeric-clamped")),
                "expected a numeric-clamped reason, got {reasons:?}"
            );
        }
        other => panic!("NaN-poisoned method should be Degraded, got {other:?}"),
    }
    assert!(result.specs.contains_key(&id("Spreadsheet", "total")), "degraded still yields a spec");
}

#[test]
fn oversized_model_is_refused_not_solved() {
    let api = standard_api();
    let units = [corpus::figure3_unit()];
    // Pad one method past the default cap; the cap itself stays at its
    // default so every organically-sized model is still accepted.
    let cfg = InferConfig {
        faults: FaultInjection {
            oversize_methods: vec![("Spreadsheet.copyTwice".into(), 1 << 21)],
            ..FaultInjection::default()
        },
        ..InferConfig::default()
    };
    let result = infer(&units, &api, &cfg);

    match &result.outcomes[&id("Spreadsheet", "copyTwice")] {
        MethodOutcome::Failed { error } => {
            assert!(error.to_string().contains("model too large"), "{error}");
        }
        other => panic!("oversized method should be Failed, got {other:?}"),
    }
    assert_eq!(result.failed_count(), 1, "{}", result.outcome_table());
    // The padded graph was refused *before* solving, so no other method
    // paid for it.
    assert!(result.specs.contains_key(&id("Spreadsheet", "copy")));
}

#[test]
fn outcome_table_is_byte_identical_for_any_thread_count_under_faults() {
    // Lift the worker-count clamp so speculation really runs on 1-core CI.
    std::env::set_var("ANEK_OVERSUBSCRIBE", "1");
    let api = standard_api();
    let units = [corpus::figure3_unit()];
    // One fault of each class at once: the nastiest deterministic mix.
    let faults = FaultInjection {
        panic_methods: vec!["Spreadsheet.copy".into()],
        nan_methods: vec!["Row.*".into()],
        oversize_methods: vec![("Spreadsheet.testParseCSV".into(), 1 << 21)],
        slow_methods: vec![],
    };
    let base_cfg = InferConfig { faults: faults.clone(), threads: 1, ..InferConfig::default() };
    let base = infer(&units, &api, &base_cfg);
    let want_table = base.outcome_table();
    let want_specs = format!("{:?}", base.specs);
    assert!(base.failed_count() >= 2, "panic and oversize both fail:\n{want_table}");
    for threads in [2, 4, 8] {
        let cfg = InferConfig { faults: faults.clone(), threads, ..InferConfig::default() };
        let got = infer(&units, &api, &cfg);
        assert_eq!(got.outcome_table(), want_table, "threads={threads} outcome table diverged");
        assert_eq!(format!("{:?}", got.specs), want_specs, "threads={threads} specs diverged");
    }
}

#[test]
fn fault_in_unrelated_class_moves_no_bits_elsewhere() {
    // `Island.roam` shares no call edge with Figure 3; panicking it must
    // leave every Figure 3 spec and summary byte-identical to the clean run.
    let island = parse(
        "class Island { void roam(Collection<Integer> c) { \
             Iterator<Integer> it = c.iterator(); \
             while (it.hasNext()) { it.next(); } } }",
    )
    .expect("island parses");
    let api = standard_api();
    let units = [corpus::figure3_unit(), island];

    let clean = infer(&units, &api, &InferConfig::default());
    let cfg = InferConfig {
        faults: FaultInjection {
            panic_methods: vec!["Island.roam".into()],
            ..FaultInjection::default()
        },
        ..InferConfig::default()
    };
    let faulted = infer(&units, &api, &cfg);

    assert!(faulted.outcomes[&id("Island", "roam")].is_failed());
    for (method, spec) in &clean.specs {
        if method.class == "Island" {
            continue;
        }
        assert_eq!(
            faulted.specs.get(method),
            Some(spec),
            "{method}: spec changed under an unrelated fault"
        );
    }
    for (method, summary) in &clean.summaries {
        if method.class == "Island" {
            continue;
        }
        assert_eq!(
            faulted.summaries.get(method),
            Some(summary),
            "{method}: summary changed under an unrelated fault"
        );
    }
}

#[test]
fn degraded_fallback_publishes_prior_summaries() {
    let api = standard_api();
    let units = [corpus::figure3_unit()];
    let cfg = InferConfig { degraded_fallback: true, ..InferConfig::default() };
    let result = infer(&units, &api, &cfg);

    // At the default 40-iteration cap some Figure 3 solves do not reach
    // tolerance; with the fallback enabled those methods must be marked
    // `prior-fallback` and still publish specs.
    let fallbacks = result
        .outcomes
        .values()
        .filter(|o| match o {
            MethodOutcome::Degraded { reasons } => {
                reasons.iter().any(|r| r.to_string() == "prior-fallback")
            }
            _ => false,
        })
        .count();
    assert!(fallbacks > 0, "expected prior-fallback outcomes:\n{}", result.outcome_table());
    assert_eq!(result.failed_count(), 0);
    assert!(!result.specs.is_empty());
}

#[test]
fn healthy_run_has_no_failures_and_an_outcome_per_method() {
    let api = standard_api();
    let units = [corpus::figure3_unit()];
    let result = infer(&units, &api, &InferConfig::default());
    assert_eq!(result.failed_count(), 0, "{}", result.outcome_table());
    for method in result.summaries.keys() {
        assert!(result.outcomes.contains_key(method), "{method} has no outcome entry");
    }
}
