//! Determinism and incremental-reuse guarantees of the parallel worklist.
//!
//! * `infer()` must be **byte-identical** for every `--threads N`: the
//!   worklist speculates a generation in parallel against frozen snapshots,
//!   merges single-threaded in queue order, and re-solves any member whose
//!   inputs an earlier merge changed — so every thread count commits the
//!   exact solve sequence of the sequential algorithm, and thread count may
//!   change wall-clock time but never a single bit of output.
//! * Re-solving via the compiled [`MethodSkeleton`] (stamp dynamic priors,
//!   solve in the flat arena) must be bit-for-bit equal to rebuilding the
//!   full [`MethodModel`] from scratch with the same summaries/evidence —
//!   the keystone of incremental model reuse.

use analysis::pfg::Pfg;
use analysis::types::ProgramIndex;
use anek_core::{infer, merged_states, InferConfig, InferResult, MethodModel, ModelCtx};
use spec_lang::{spec_of_method, standard_api};
use std::sync::Arc;

/// Serializes everything semantically relevant about an inference result
/// (order is deterministic: all maps are `BTreeMap`s). Excludes wall-clock
/// time and thread count, which legitimately vary.
fn fingerprint(r: &InferResult) -> String {
    format!(
        "specs={:?}\nsummaries={:?}\nconfidence={:?}\nsolves={}\nbp_iterations={}\nmessage_updates={}\npre_annotated={:?}",
        r.specs, r.summaries, r.confidence, r.solves, r.bp_iterations, r.message_updates,
        r.pre_annotated
    )
}

/// Lifts the worker-count clamp so the speculative pipeline runs for real
/// even on single-core CI runners (the clamp never changes results, but an
/// unclamped run actually exercises the code under test).
fn oversubscribe() {
    std::env::set_var("ANEK_OVERSUBSCRIBE", "1");
}

#[test]
fn infer_is_byte_identical_for_any_thread_count() {
    oversubscribe();
    let api = standard_api();
    for case in corpus::suite() {
        let unit = case.unit();
        let units = [unit];
        let base = infer(&units, &api, &InferConfig { threads: 1, ..InferConfig::default() });
        let want = fingerprint(&base);
        for threads in [2, 8] {
            let got = infer(&units, &api, &InferConfig { threads, ..InferConfig::default() });
            assert_eq!(
                fingerprint(&got),
                want,
                "case {}: threads={threads} diverged from threads=1",
                case.name
            );
        }
    }
}

#[test]
fn infer_is_byte_identical_on_figure3_for_any_thread_count() {
    oversubscribe();
    let api = standard_api();
    let units = [corpus::figure3_unit()];
    let base = infer(&units, &api, &InferConfig { threads: 1, ..InferConfig::default() });
    let want = fingerprint(&base);
    for threads in [2, 4, 8] {
        let got = infer(&units, &api, &InferConfig { threads, ..InferConfig::default() });
        assert_eq!(fingerprint(&got), want, "threads={threads} diverged from threads=1");
    }
}

#[test]
fn speculation_counters_reflect_parallel_commits() {
    oversubscribe();
    let api = standard_api();
    let units = [corpus::figure3_unit()];

    // Sequential runs never speculate: the counters must be exactly zero.
    let seq = infer(&units, &api, &InferConfig { threads: 1, ..InferConfig::default() });
    assert_eq!(seq.speculative_solves, 0, "threads=1 must not speculate");
    assert_eq!(seq.discarded_solves, 0);
    assert_eq!(seq.commit_stall, std::time::Duration::ZERO);

    // Parallel runs speculate whole chunks; discards are the subset whose
    // inputs an earlier merge changed, so they can never exceed the
    // speculation that produced them — and none of it may change output.
    let par = infer(&units, &api, &InferConfig { threads: 4, ..InferConfig::default() });
    assert!(par.speculative_solves > 0, "threads=4 should speculate at least one chunk");
    assert!(par.speculative_solves <= par.solves);
    assert!(par.discarded_solves <= par.speculative_solves);
    assert_eq!(fingerprint(&par), fingerprint(&seq));
}

#[test]
fn skeleton_resolve_equals_fresh_model_rebuild_bit_for_bit() {
    // Converged summaries from a full run give the dynamic priors real,
    // non-uniform values, so the stamped path is exercised for real.
    let api = standard_api();
    let unit = corpus::figure3_unit();
    let cfg = InferConfig::default();
    let result = infer(std::slice::from_ref(&unit), &api, &cfg);

    let index = ProgramIndex::build([&unit]);
    let states = merged_states(std::slice::from_ref(&unit), &api);
    let ctx = ModelCtx { index: &index, api: &api, states: &states };

    for t in &unit.types {
        for m in t.methods() {
            if m.body.is_none() {
                continue;
            }
            let spec = spec_of_method(m).unwrap_or_default();
            let pfg = Pfg::build(&index, &api, &t.name, m);

            // Incremental path: compiled skeleton + stamped dynamic priors.
            let skeleton = anek_core::MethodSkeleton::build(
                ctx,
                Arc::new(Pfg::build(&index, &api, &t.name, m)),
                &spec,
                m.is_constructor(),
                &cfg,
            );
            let extras = skeleton.stamp(ctx, &result.summaries, &[]);
            let incremental = skeleton.solve(&extras, &cfg);

            // Fresh path: rebuild the whole model and solve its graph.
            let model =
                MethodModel::build(ctx, pfg, &spec, m.is_constructor(), &result.summaries, &cfg);
            let fresh = model.graph.solve(&cfg.bp);

            assert_eq!(
                incremental.as_slice().len(),
                fresh.as_slice().len(),
                "{}.{}: variable counts differ",
                t.name,
                m.name
            );
            for (i, (a, b)) in incremental.as_slice().iter().zip(fresh.as_slice()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}.{} var {i}: incremental {a:e} != fresh {b:e}",
                    t.name,
                    m.name
                );
            }
            assert_eq!(incremental.iterations, fresh.iterations);
            assert_eq!(incremental.converged, fresh.converged);
        }
    }
}
