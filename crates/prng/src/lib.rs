//! # prng
//!
//! A tiny, dependency-free deterministic pseudo-random number generator and
//! a minimal property-testing harness.
//!
//! The reproduction must build in fully offline environments, so it cannot
//! pull `rand` or `proptest` from crates.io. This crate supplies the two
//! things those were used for:
//!
//! * [`Rng`] — a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//!   generator. It is *not* cryptographically secure; it exists to make
//!   corpus generation and randomized tests deterministic per seed.
//! * [`forall`] — a fixed-case-count property runner that derives one child
//!   seed per case and reports the failing case index and seed, so any
//!   failure is reproducible with [`Rng::new`].
//!
//! ## Example
//!
//! ```
//! use prng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let die = a.gen_range(1..7);
//! assert!((1..7).contains(&die));
//! ```

#![warn(missing_docs)]

use std::ops::Range;

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// The same seed always produces the same stream, on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform integer in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range on empty range {range:?}");
        let span = range.end.wrapping_sub(range.start) as u64;
        // Multiply-shift bounded sampling (Lemire); the bias for spans this
        // small (vs 2^64) is far below anything the corpus could observe.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start.wrapping_add(hi as i64)
    }

    /// A uniform index in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_index(&mut self, range: Range<usize>) -> usize {
        self.gen_range(range.start as i64..range.end as i64) as usize
    }

    /// A uniformly chosen element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.gen_index(0..slice.len())]
    }

    /// An independent child generator (for splitting one seed into many
    /// deterministic sub-streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// Runs a property `cases` times with independent deterministic seeds.
///
/// Each case gets its own [`Rng`] derived from `name` and the case index.
/// When a case panics, the harness prints the property name, case index and
/// child seed (pass it to [`Rng::new`] to replay) and re-raises the panic.
pub fn forall(name: &str, cases: u32, property: impl Fn(&mut Rng)) {
    // FNV-1a over the name gives a stable per-property base seed.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..cases {
        let mut seed_state = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let child = splitmix64(&mut seed_state);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(child);
            property(&mut rng);
        }));
        if let Err(panic) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} (replay with Rng::new({child:#x}))"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::new(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5..17);
            assert!((-5..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_index(0..6)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all bucket values reachable: {seen:?}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of U[0,1) lands near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = Rng::new(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        let mut rng = Rng::new(13);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let mut rng = Rng::new(13);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::new(5);
        let mut a = parent.fork();
        let mut b = parent.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forall_runs_every_case() {
        let counter = std::cell::Cell::new(0u32);
        forall("counting", 32, |_| counter.set(counter.get() + 1));
        assert_eq!(counter.get(), 32);
    }

    #[test]
    fn forall_is_deterministic_per_name() {
        let collect = |name: &str| {
            let out = std::cell::RefCell::new(Vec::new());
            forall(name, 4, |rng| out.borrow_mut().push(rng.next_u64()));
            out.into_inner()
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }
}
