//! Sparse Gaussian elimination over signed exact rationals.
//!
//! The fractional-permission systems of [`crate::local_infer()`](crate::local_infer::local_infer) are large but
//! extremely sparse (each conservation equation touches a handful of edges),
//! and nearly tree-structured, so sparse elimination has little fill-in
//! where the dense [`crate::linalg`] solver would need gigabytes at the
//! paper's 400-line scale.

use spec_lang::Fraction;
use std::collections::BTreeMap;

/// A signed exact rational: `(negative?, magnitude)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignedFrac {
    /// Whether the value is negative.
    pub neg: bool,
    /// Absolute value.
    pub mag: Fraction,
}

impl SignedFrac {
    /// Positive one.
    pub const ONE: SignedFrac = SignedFrac { neg: false, mag: Fraction::ONE };
    /// Zero.
    pub const ZERO: SignedFrac = SignedFrac { neg: false, mag: Fraction::ZERO };

    /// Negative one.
    pub fn neg_one() -> SignedFrac {
        SignedFrac { neg: true, mag: Fraction::ONE }
    }

    /// From an unsigned fraction.
    pub fn from(mag: Fraction) -> SignedFrac {
        SignedFrac { neg: false, mag }
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.mag.is_zero()
    }

    fn neg(self) -> SignedFrac {
        SignedFrac { neg: !self.neg && !self.is_zero(), mag: self.mag }
    }

    fn add(self, other: SignedFrac) -> SignedFrac {
        match (self.neg, other.neg) {
            (false, false) => SignedFrac { neg: false, mag: self.mag + other.mag },
            (true, true) => SignedFrac { neg: true, mag: self.mag + other.mag },
            (false, true) => {
                if self.mag >= other.mag {
                    SignedFrac { neg: false, mag: self.mag - other.mag }
                } else {
                    SignedFrac { neg: true, mag: other.mag - self.mag }
                }
            }
            (true, false) => other.add(self),
        }
    }

    fn sub(self, other: SignedFrac) -> SignedFrac {
        self.add(other.neg())
    }

    fn mul(self, other: SignedFrac) -> SignedFrac {
        let mag = self.mag * other.mag;
        SignedFrac { neg: self.neg != other.neg && !mag.is_zero(), mag }
    }

    fn div(self, other: SignedFrac) -> SignedFrac {
        let mag = self.mag / other.mag;
        SignedFrac { neg: self.neg != other.neg && !mag.is_zero(), mag }
    }
}

/// One sparse equation: `sum(coeff_i · x_i) = rhs`.
#[derive(Debug, Clone, Default)]
pub struct SparseRow {
    /// Non-zero coefficients by column.
    pub coeffs: BTreeMap<usize, SignedFrac>,
    /// Right-hand side.
    pub rhs: SignedFrac,
}

impl SparseRow {
    /// An empty row (0 = 0).
    pub fn new() -> SparseRow {
        SparseRow::default()
    }

    /// Adds `v` to the coefficient of `col` (dropping zeros).
    pub fn add_coeff(&mut self, col: usize, v: SignedFrac) {
        let cur = self.coeffs.get(&col).copied().unwrap_or(SignedFrac::ZERO);
        let new = cur.add(v);
        if new.is_zero() {
            self.coeffs.remove(&col);
        } else {
            self.coeffs.insert(col, new);
        }
    }
}

/// Result of sparse elimination.
#[derive(Debug, Clone)]
pub struct SparseSolution {
    /// Whether the system is consistent.
    pub consistent: bool,
    /// A particular solution (free variables zero); signed values.
    pub values: Vec<SignedFrac>,
    /// Rank.
    pub rank: usize,
}

/// Solves a sparse system by Gaussian elimination with a min-degree-ish
/// pivot choice (smallest row touching the column).
pub fn solve_sparse(mut rows: Vec<SparseRow>, n_vars: usize) -> SparseSolution {
    // Column -> rows currently containing it.
    let mut rows_of_col: Vec<Vec<usize>> = vec![Vec::new(); n_vars];
    for (ri, r) in rows.iter().enumerate() {
        for &c in r.coeffs.keys() {
            rows_of_col[c].push(ri);
        }
    }
    let mut used = vec![false; rows.len()];
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; n_vars];
    let mut rank = 0usize;

    // Iterate to a fixpoint: elimination can introduce a previously-skipped
    // column into rows that would now pivot on it.
    loop {
        let mut progress = false;
        for col in 0..n_vars {
            if pivot_of_col[col].is_some() {
                continue;
            }
            // Pick the unused row containing `col` with the fewest
            // coefficients (a cheap min-degree heuristic against fill-in).
            let candidates: Vec<usize> = rows_of_col[col]
                .iter()
                .copied()
                .filter(|&ri| !used[ri] && rows[ri].coeffs.contains_key(&col))
                .collect();
            let Some(&pivot_row) = candidates.iter().min_by_key(|&&ri| rows[ri].coeffs.len())
            else {
                continue;
            };
            used[pivot_row] = true;
            pivot_of_col[col] = Some(pivot_row);
            rank += 1;
            progress = true;

            // Normalize the pivot row.
            let pv = rows[pivot_row].coeffs[&col];
            if pv != SignedFrac::ONE {
                let coeffs: Vec<(usize, SignedFrac)> =
                    rows[pivot_row].coeffs.iter().map(|(&c, &v)| (c, v.div(pv))).collect();
                rows[pivot_row].coeffs = coeffs.into_iter().collect();
                rows[pivot_row].rhs = rows[pivot_row].rhs.div(pv);
            }

            // Eliminate `col` from every other row containing it.
            let touching: Vec<usize> = rows_of_col[col]
                .iter()
                .copied()
                .filter(|&ri| ri != pivot_row && rows[ri].coeffs.contains_key(&col))
                .collect();
            let pivot_coeffs: Vec<(usize, SignedFrac)> =
                rows[pivot_row].coeffs.iter().map(|(&c, &v)| (c, v)).collect();
            let pivot_rhs = rows[pivot_row].rhs;
            for ri in touching {
                let factor = rows[ri].coeffs[&col];
                for &(c, v) in &pivot_coeffs {
                    let cur = rows[ri].coeffs.get(&c).copied().unwrap_or(SignedFrac::ZERO);
                    let new = cur.sub(factor.mul(v));
                    let had = rows[ri].coeffs.contains_key(&c);
                    if new.is_zero() {
                        rows[ri].coeffs.remove(&c);
                    } else {
                        rows[ri].coeffs.insert(c, new);
                        if !had {
                            rows_of_col[c].push(ri);
                        }
                    }
                }
                rows[ri].rhs = rows[ri].rhs.sub(factor.mul(pivot_rhs));
            }
        }
        if !progress {
            break;
        }
    }

    // Consistency: any remaining non-pivot row must be 0 = 0.
    for (ri, r) in rows.iter().enumerate() {
        if !used[ri] && r.coeffs.is_empty() && !r.rhs.is_zero() {
            return SparseSolution { consistent: false, values: Vec::new(), rank };
        }
    }

    // Back-substitution is unnecessary: full (Gauss-Jordan style) elimination
    // above already isolated each pivot column; read values off pivot rows,
    // pinning free variables to zero.
    let mut values = vec![SignedFrac::ZERO; n_vars];
    for col in 0..n_vars {
        if let Some(ri) = pivot_of_col[col] {
            // Any remaining columns in the pivot row are free (pinned to
            // zero), so the pivot value is simply the row's rhs.
            values[col] = rows[ri].rhs;
        }
    }
    SparseSolution { consistent: true, values, rank }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: i64, d: i64) -> SignedFrac {
        SignedFrac::from(Fraction::new(n, d).unwrap())
    }

    fn row(coeffs: &[(usize, SignedFrac)], rhs: SignedFrac) -> SparseRow {
        let mut r = SparseRow::new();
        for &(c, v) in coeffs {
            r.add_coeff(c, v);
        }
        r.rhs = rhs;
        r
    }

    #[test]
    fn solves_small_system() {
        // x0 + x1 = 1 ; x0 - x1 = 0  => x0 = x1 = 1/2.
        let rows = vec![
            row(&[(0, SignedFrac::ONE), (1, SignedFrac::ONE)], f(1, 1)),
            row(&[(0, SignedFrac::ONE), (1, SignedFrac::neg_one())], SignedFrac::ZERO),
        ];
        let s = solve_sparse(rows, 2);
        assert!(s.consistent);
        assert_eq!(s.rank, 2);
        assert_eq!(s.values[0], f(1, 2));
        assert_eq!(s.values[1], f(1, 2));
    }

    #[test]
    fn detects_inconsistency() {
        let rows =
            vec![row(&[(0, SignedFrac::ONE)], f(1, 1)), row(&[(0, SignedFrac::ONE)], f(2, 1))];
        let s = solve_sparse(rows, 1);
        assert!(!s.consistent);
    }

    #[test]
    fn free_variables_are_zero() {
        // x0 + x2 = 1; x1 free.
        let rows = vec![row(&[(0, SignedFrac::ONE), (2, SignedFrac::ONE)], f(1, 1))];
        let s = solve_sparse(rows, 3);
        assert!(s.consistent);
        assert_eq!(s.rank, 1);
        // One of x0/x2 is the pivot carrying 1, the other free (0); x1 = 0.
        let sum = s.values[0].mag + s.values[2].mag;
        assert_eq!(sum, Fraction::ONE);
        assert!(s.values[1].is_zero());
    }

    #[test]
    fn signed_arithmetic_laws() {
        let a = f(3, 4);
        let b = f(1, 4).neg();
        assert_eq!(a.add(b), f(1, 2));
        assert_eq!(b.add(a), f(1, 2));
        assert_eq!(a.sub(a), SignedFrac::ZERO);
        assert_eq!(a.mul(b), f(3, 16).neg());
        assert_eq!(b.div(b), SignedFrac::ONE);
        assert!(!SignedFrac::ZERO.neg().neg);
    }

    #[test]
    fn conservation_chain_scales() {
        // A chain: x0 = 1, x_{i} - x_{i+1} = 0 — exercise sparse elimination
        // on a long, sparse system.
        let n = 2000usize;
        let mut rows = vec![row(&[(0, SignedFrac::ONE)], f(1, 1))];
        for i in 0..n - 1 {
            rows.push(row(
                &[(i, SignedFrac::ONE), (i + 1, SignedFrac::neg_one())],
                SignedFrac::ZERO,
            ));
        }
        let s = solve_sparse(rows, n);
        assert!(s.consistent);
        assert_eq!(s.rank, n);
        assert_eq!(s.values[n - 1], f(1, 1));
    }
}
