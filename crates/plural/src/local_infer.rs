//! PLURAL's local fractional-permission inference (Table 3 baseline).
//!
//! "While PLURAL requires annotations on method boundaries it uses a local
//! permission inference … responsible for determining which fractions of
//! permissions are consumed and returned by different parts of a method
//! body … The underlying algorithm relies upon Gaussian Elimination to find
//! satisfying fractional permission assignments" (paper §4.2, citing
//! Bierhoff's thesis ch. 5).
//!
//! We reproduce that computation: every PFG edge gets a fraction variable;
//! flow conservation at every node plus unit supply at each parameter yields
//! a linear system over exact rationals, solved by [`crate::linalg::solve`].
//! The Table 3 experiment compares this (on a fully inlined method) against
//! ANEK's probabilistic inference on the modular form.

use crate::sparse::{solve_sparse, SignedFrac, SparseRow};
use analysis::pfg::{Pfg, PfgNodeKind};
use analysis::types::ProgramIndex;
use java_syntax::ast::MethodDecl;
use spec_lang::{ApiRegistry, Fraction};
use std::time::{Duration, Instant};

/// The result of local fractional inference over one method.
#[derive(Debug, Clone)]
pub struct LocalInference {
    /// Whether a satisfying fractional assignment exists.
    pub satisfiable: bool,
    /// Fraction assigned to each PFG edge (empty when unsatisfiable).
    pub edge_fractions: Vec<Fraction>,
    /// Number of fraction variables (PFG edges).
    pub variables: usize,
    /// Number of conservation equations.
    pub equations: usize,
    /// Rank of the system.
    pub rank: usize,
    /// Wall-clock time of system construction + elimination.
    pub elapsed: Duration,
}

/// Runs local fractional inference on one method.
pub fn local_infer(
    index: &ProgramIndex,
    api: &ApiRegistry,
    class: &str,
    method: &MethodDecl,
) -> LocalInference {
    let pfg = Pfg::build(index, api, class, method);
    local_infer_pfg(&pfg)
}

/// Runs local fractional inference over a prebuilt PFG.
pub fn local_infer_pfg(pfg: &Pfg) -> LocalInference {
    let start = Instant::now();
    let n_edges = pfg.edges.len();
    let n_nodes = pfg.nodes.len();

    // Variables: one fraction per edge (0..n_edges) and one per node
    // (n_edges..). Two very different kinds of fan-in/fan-out exist:
    //  * permission SPLITS (Split nodes) distribute additively:
    //    `sum(out-edges) - node = 0`;
    //  * control-flow alternatives (every other multi-edge node) carry the
    //    same fraction on every path: `edge - node = 0` per edge.
    // Merges with a CallPost predecessor re-combine additively
    // (`sum(in-edges) - node = 0`); join merges take equal fractions from
    // the alternative paths. Call pre/post pairs are pass-throughs
    // (`post - pre = 0`) and sources (parameter pres, `new`, field reads,
    // call results) supply one whole permission (`node = 1`).
    let node_var = |n: usize| n_edges + n;
    let n_vars = n_edges + n_nodes;
    let mut rows: Vec<SparseRow> = Vec::new();

    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for (i, (a, b)) in pfg.edges.iter().enumerate() {
        out_edges[*a].push(i);
        in_edges[*b].push(i);
    }

    let eq_pair = |a: usize, b: usize| {
        let mut r = SparseRow::new();
        r.add_coeff(a, SignedFrac::ONE);
        r.add_coeff(b, SignedFrac::neg_one());
        r
    };

    for n in &pfg.nodes {
        let outs = &out_edges[n.id];
        let ins = &in_edges[n.id];
        let v = node_var(n.id);

        let is_source = matches!(
            n.kind,
            PfgNodeKind::ParamPre { .. }
                | PfgNodeKind::New { .. }
                | PfgNodeKind::FieldRead { .. }
                | PfgNodeKind::CallResult { .. }
        );
        if is_source {
            let mut r = SparseRow::new();
            r.add_coeff(v, SignedFrac::ONE);
            r.rhs = SignedFrac::ONE;
            rows.push(r);
        }

        if !outs.is_empty() {
            if matches!(n.kind, PfgNodeKind::Split) {
                let mut r = SparseRow::new();
                for &e in outs {
                    r.add_coeff(e, SignedFrac::ONE);
                }
                r.add_coeff(v, SignedFrac::neg_one());
                rows.push(r);
            } else {
                for &e in outs {
                    rows.push(eq_pair(e, v));
                }
            }
        }

        if !ins.is_empty() && !is_source && !matches!(n.kind, PfgNodeKind::CallPost { .. }) {
            let additive = matches!(n.kind, PfgNodeKind::Merge)
                && ins.iter().any(|&e| {
                    matches!(pfg.nodes[pfg.edges[e].0].kind, PfgNodeKind::CallPost { .. })
                });
            if additive {
                let mut r = SparseRow::new();
                for &e in ins {
                    r.add_coeff(e, SignedFrac::ONE);
                }
                r.add_coeff(v, SignedFrac::neg_one());
                rows.push(r);
            } else {
                for &e in ins {
                    rows.push(eq_pair(e, v));
                }
            }
        }
    }

    // Call pre/post pass-through: the callee returns what it consumed.
    let mut pres: std::collections::BTreeMap<(java_syntax::ExprId, String), usize> =
        std::collections::BTreeMap::new();
    let mut posts: std::collections::BTreeMap<(java_syntax::ExprId, String), usize> =
        std::collections::BTreeMap::new();
    for n in &pfg.nodes {
        match &n.kind {
            PfgNodeKind::CallPre { site, role, .. } => {
                pres.insert((*site, role.to_string()), n.id);
            }
            PfgNodeKind::CallPost { site, role, .. } => {
                posts.insert((*site, role.to_string()), n.id);
            }
            _ => {}
        }
    }
    for (key, pre) in &pres {
        if let Some(post) = posts.get(key) {
            rows.push(eq_pair(node_var(*post), node_var(*pre)));
        }
    }

    let equations = rows.len();
    let solution = solve_sparse(rows, n_vars);
    // Permission fractions cannot be negative: a negative component means
    // some path demands more permission than is available.
    let satisfiable = solution.consistent && solution.values.iter().all(|v| !v.neg || v.is_zero());
    LocalInference {
        satisfiable,
        edge_fractions: if satisfiable {
            solution.values[..n_edges].iter().map(|v| v.mag).collect()
        } else {
            Vec::new()
        },
        variables: n_vars,
        equations,
        rank: solution.rank,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::standard_api;

    fn run(src: &str, class: &str, method: &str) -> LocalInference {
        let unit = parse(src).unwrap();
        let index = ProgramIndex::build([&unit]);
        let api = standard_api();
        let m = unit.type_named(class).unwrap().method_named(method).unwrap();
        local_infer(&index, &api, class, m)
    }

    #[test]
    fn straight_line_method_is_satisfiable() {
        let r = run(
            r#"class App {
                void m(Collection<Integer> c) {
                    Iterator<Integer> it = c.iterator();
                    it.hasNext();
                }
            }"#,
            "App",
            "m",
        );
        assert!(r.satisfiable);
        assert!(r.variables > 0);
        assert!(r.equations > 0);
        // Every PFG edge carries a defined fraction (variables additionally
        // include per-node and slack variables).
        assert!(!r.edge_fractions.is_empty());
        assert!(r.edge_fractions.len() <= r.variables);
    }

    #[test]
    fn loop_method_is_satisfiable() {
        let r = run(
            r#"class App {
                void drain(Iterator<Integer> it) {
                    while (it.hasNext()) { it.next(); }
                }
            }"#,
            "App",
            "drain",
        );
        assert!(r.satisfiable, "vars={} eqs={} rank={}", r.variables, r.equations, r.rank);
    }

    #[test]
    fn system_grows_with_method_size() {
        let small = run("class A { void m(Row r) { } } class Row { void x() {} }", "A", "m");
        let large = run(
            r#"class Row { void x() {} }
               class A {
                void m(Row r, Row s) {
                    r.x(); s.x(); r.x(); s.x(); r.x();
                }
            }"#,
            "A",
            "m",
        );
        assert!(large.variables > small.variables);
        assert!(large.equations > small.equations);
    }

    #[test]
    fn fractions_at_sources_are_unit() {
        let r = run(
            r#"class Row { void x() {} }
               class A { void m(Row r) { r.x(); } }"#,
            "A",
            "m",
        );
        assert!(r.satisfiable);
        // At least one edge carries the full unit permission out of PRE r.
        assert!(r.edge_fractions.iter().any(Fraction::is_one), "{:?}", r.edge_fractions);
    }
}
