//! Exact rational linear algebra.
//!
//! PLURAL's local permission inference "relies upon Gaussian Elimination to
//! find satisfying fractional permission assignments" (paper §4.2, citing
//! Bierhoff's thesis ch. 5). This module provides that substrate: solving
//! `A·x = b` over exact [`Fraction`]s with partial pivoting, reporting rank,
//! consistency and a particular solution (free variables pinned to zero).

use spec_lang::Fraction;

/// Outcome of [`solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Whether the system is consistent.
    pub consistent: bool,
    /// Rank of the coefficient matrix.
    pub rank: usize,
    /// A particular solution (free variables set to zero); empty when
    /// inconsistent.
    pub values: Vec<Fraction>,
    /// Indices of free (underdetermined) variables.
    pub free: Vec<usize>,
}

/// A dense matrix of fractions in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Fraction>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![Fraction::ZERO; rows * cols] }
    }

    /// Builds from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged.
    pub fn from_rows(rows: Vec<Vec<Fraction>>) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged matrix rows");
        Matrix { rows: r, cols: c, data: rows.into_iter().flatten().collect() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> Fraction {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: Fraction) {
        self.data[r * self.cols + c] = v;
    }
}

/// Fractions are non-negative by construction, but elimination needs signed
/// intermediates; this helper represents a signed fraction as (sign, |v|).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Signed {
    neg: bool,
    mag: Fraction,
}

impl Signed {
    fn from(f: Fraction) -> Signed {
        Signed { neg: false, mag: f }
    }

    fn is_zero(self) -> bool {
        self.mag.is_zero()
    }

    fn sub(self, other: Signed) -> Signed {
        match (self.neg, other.neg) {
            (false, false) => {
                if self.mag >= other.mag {
                    Signed { neg: false, mag: self.mag - other.mag }
                } else {
                    Signed { neg: true, mag: other.mag - self.mag }
                }
            }
            // (-a) - (-b) = b - a
            (true, true) => {
                Signed { neg: false, mag: other.mag }.sub(Signed { neg: false, mag: self.mag })
            }
            (false, true) => Signed { neg: false, mag: self.mag + other.mag },
            (true, false) => Signed { neg: true, mag: self.mag + other.mag },
        }
    }

    fn mul(self, other: Signed) -> Signed {
        Signed { neg: self.neg != other.neg, mag: self.mag * other.mag }
    }

    fn div(self, other: Signed) -> Signed {
        Signed { neg: self.neg != other.neg, mag: self.mag / other.mag }
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial (first-nonzero)
/// pivoting over exact rationals.
///
/// Negative solution components are clamped into the result as zero with
/// `consistent` still true only if they are genuinely representable — the
/// permission systems we build are conservation systems whose solutions are
/// non-negative, so a negative component is reported by `consistent =
/// false`.
///
/// # Panics
///
/// Panics if `b.len() != a.rows()`.
// Row operations read two rows of `m` at once (pivot row + eliminated row),
// which rules out the iterator form needless_range_loop suggests.
#[allow(clippy::needless_range_loop)]
pub fn solve(a: &Matrix, b: &[Fraction]) -> Solution {
    assert_eq!(b.len(), a.rows(), "rhs length must match row count");
    let rows = a.rows();
    let cols = a.cols();
    // Augmented signed working copy.
    let mut m: Vec<Vec<Signed>> = (0..rows)
        .map(|r| {
            let mut row: Vec<Signed> = (0..cols).map(|c| Signed::from(a.get(r, c))).collect();
            row.push(Signed::from(b[r]));
            row
        })
        .collect();

    let mut pivot_col_of_row: Vec<Option<usize>> = vec![None; rows];
    let mut rank = 0usize;
    let mut col = 0usize;
    while rank < rows && col < cols {
        // Find pivot.
        let Some(p) = (rank..rows).find(|&r| !m[r][col].is_zero()) else {
            col += 1;
            continue;
        };
        m.swap(rank, p);
        // Normalize pivot row.
        let pv = m[rank][col];
        for c in col..=cols {
            m[rank][c] = m[rank][c].div(pv);
        }
        // Eliminate everywhere else.
        for r in 0..rows {
            if r != rank && !m[r][col].is_zero() {
                let f = m[r][col];
                for c in col..=cols {
                    let delta = f.mul(m[rank][c]);
                    m[r][c] = m[r][c].sub(delta);
                }
            }
        }
        pivot_col_of_row[rank] = Some(col);
        rank += 1;
        col += 1;
    }

    // Inconsistency: zero row with non-zero rhs.
    for r in rank..rows {
        if !m[r][cols].is_zero() {
            return Solution { consistent: false, rank, values: Vec::new(), free: Vec::new() };
        }
    }

    let pivot_cols: Vec<usize> = pivot_col_of_row.iter().flatten().copied().collect();
    let free: Vec<usize> = (0..cols).filter(|c| !pivot_cols.contains(c)).collect();
    let mut values = vec![Fraction::ZERO; cols];
    let mut consistent = true;
    for (r, &pc) in pivot_cols.iter().enumerate() {
        let v = m[r][cols];
        if v.neg && !v.is_zero() {
            consistent = false;
        } else {
            values[pc] = v.mag;
        }
    }
    Solution { consistent, rank, values, free }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: i64, d: i64) -> Fraction {
        Fraction::new(n, d).unwrap()
    }

    #[test]
    fn solves_identity() {
        let a = Matrix::from_rows(vec![vec![f(1, 1), f(0, 1)], vec![f(0, 1), f(1, 1)]]);
        let s = solve(&a, &[f(1, 2), f(1, 3)]);
        assert!(s.consistent);
        assert_eq!(s.rank, 2);
        assert_eq!(s.values, vec![f(1, 2), f(1, 3)]);
        assert!(s.free.is_empty());
    }

    #[test]
    fn solves_coupled_system() {
        // x + y = 1 ; x - ... all-positive variant: x + y = 1; x + 2y = 3/2
        // → y = 1/2, x = 1/2.
        let a = Matrix::from_rows(vec![vec![f(1, 1), f(1, 1)], vec![f(1, 1), f(2, 1)]]);
        let s = solve(&a, &[f(1, 1), f(3, 2)]);
        assert!(s.consistent);
        assert_eq!(s.values, vec![f(1, 2), f(1, 2)]);
    }

    #[test]
    fn detects_inconsistency() {
        // x + y = 1 ; x + y = 2.
        let a = Matrix::from_rows(vec![vec![f(1, 1), f(1, 1)], vec![f(1, 1), f(1, 1)]]);
        let s = solve(&a, &[f(1, 1), f(2, 1)]);
        assert!(!s.consistent);
    }

    #[test]
    fn underdetermined_reports_free_vars() {
        // x + y = 1 with one equation: y free.
        let a = Matrix::from_rows(vec![vec![f(1, 1), f(1, 1)]]);
        let s = solve(&a, &[f(1, 1)]);
        assert!(s.consistent);
        assert_eq!(s.rank, 1);
        assert_eq!(s.free, vec![1]);
        // Particular solution with free var pinned to 0.
        assert_eq!(s.values[0], f(1, 1));
        assert_eq!(s.values[1], f(0, 1));
    }

    #[test]
    fn conservation_system_splits_fraction() {
        // A split: parent = c1 + c2, with parent = 1 and c1 = c2.
        // Equations: x_p = 1 ; x_p - x_1 - x_2 = 0 ; x_1 - x_2 = 0.
        // Signed arithmetic is internal; express with positive coefficients
        // by moving terms: x_1 + x_2 = x_p → row [1, 1, -1]… we encode the
        // subtraction via solve's signed core by using from_rows with zero
        // and positive entries on both sides:
        //   x_p                = 1
        //   x_1 + x_2          = 1   (substituting x_p)
        //   x_1        - x_2   = 0   → encoded as x_1 = x_2 via two rows
        let a = Matrix::from_rows(vec![
            vec![f(1, 1), f(0, 1), f(0, 1)],
            vec![f(0, 1), f(1, 1), f(1, 1)],
            vec![f(0, 1), f(2, 1), f(0, 1)], // 2*x1 = 1 → x1 = 1/2
        ]);
        let s = solve(&a, &[f(1, 1), f(1, 1), f(1, 1)]);
        assert!(s.consistent);
        assert_eq!(s.values, vec![f(1, 1), f(1, 2), f(1, 2)]);
    }

    #[test]
    fn larger_random_like_system_round_trips() {
        // Construct A and x, compute b = A·x, then recover x.
        let a = Matrix::from_rows(vec![
            vec![f(2, 1), f(1, 3), f(0, 1), f(1, 1)],
            vec![f(0, 1), f(1, 1), f(1, 2), f(0, 1)],
            vec![f(1, 1), f(0, 1), f(1, 1), f(1, 4)],
            vec![f(0, 1), f(0, 1), f(0, 1), f(1, 1)],
        ]);
        let x = [f(1, 2), f(1, 3), f(1, 5), f(1, 7)];
        let mut b = Vec::new();
        for r in 0..4 {
            let mut acc = Fraction::ZERO;
            for (c, xc) in x.iter().enumerate() {
                acc = acc + a.get(r, c) * *xc;
            }
            b.push(acc);
        }
        let s = solve(&a, &b);
        assert!(s.consistent);
        assert_eq!(s.values, x.to_vec());
    }

    #[test]
    fn zero_matrix_with_zero_rhs_is_all_free() {
        let a = Matrix::zeros(2, 3);
        let s = solve(&a, &[Fraction::ZERO, Fraction::ZERO]);
        assert!(s.consistent);
        assert_eq!(s.rank, 0);
        assert_eq!(s.free.len(), 3);
    }
}
