//! Program-method specification tables.
//!
//! The checker consults a [`SpecTable`] for the specification of every
//! program method: hand-written annotations parsed from source, optionally
//! overlaid with ANEK-inferred specifications (the paper's workflow — infer,
//! apply, then check with PLURAL).

use analysis::types::MethodId;
use java_syntax::ast::CompilationUnit;
use spec_lang::{spec_of_method, ApiRegistry, MethodSpec, StateRegistry, StateSpace};
use std::collections::BTreeMap;

/// Specifications and signatures for program methods.
#[derive(Debug, Clone, Default)]
pub struct SpecTable {
    specs: BTreeMap<MethodId, MethodSpec>,
    params: BTreeMap<MethodId, Vec<String>>,
}

impl SpecTable {
    /// An empty table (every method unspecified) that still knows parameter
    /// names — the Table 2 "Original" configuration.
    pub fn unannotated(units: &[CompilationUnit]) -> SpecTable {
        let mut t = SpecTable::default();
        t.collect_params(units);
        t
    }

    /// Builds the table from source annotations.
    pub fn from_units(units: &[CompilationUnit]) -> SpecTable {
        let mut t = SpecTable::default();
        t.collect_params(units);
        for unit in units {
            for ty in &unit.types {
                for m in ty.methods() {
                    if let Ok(spec) = spec_of_method(m) {
                        if !spec.is_empty() {
                            t.specs.insert(MethodId::new(&ty.name, &m.name), spec);
                        }
                    }
                }
            }
        }
        t
    }

    fn collect_params(&mut self, units: &[CompilationUnit]) {
        for unit in units {
            for ty in &unit.types {
                for m in ty.methods() {
                    self.params.insert(
                        MethodId::new(&ty.name, &m.name),
                        m.params.iter().map(|p| p.name.clone()).collect(),
                    );
                }
            }
        }
    }

    /// Overlays inferred specifications: a non-empty inferred spec replaces
    /// the entry of any method that had no hand-written one.
    pub fn overlay_inferred(mut self, inferred: &BTreeMap<MethodId, MethodSpec>) -> SpecTable {
        for (id, spec) in inferred {
            if spec.is_empty() {
                continue;
            }
            self.specs.entry(id.clone()).or_insert_with(|| spec.clone());
        }
        self
    }

    /// Inserts or replaces a spec.
    pub fn insert(&mut self, id: MethodId, spec: MethodSpec) {
        self.specs.insert(id, spec);
    }

    /// The specification of a method, if any.
    pub fn get(&self, id: &MethodId) -> Option<&MethodSpec> {
        self.specs.get(id)
    }

    /// Number of specified methods.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no method is specified.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The name of the `i`-th parameter of a method.
    pub fn param_name(&self, id: &MethodId, i: usize) -> Option<String> {
        self.params.get(id).and_then(|ps| ps.get(i).cloned())
    }

    /// Iterates over all (method, spec) entries.
    pub fn iter(&self) -> impl Iterator<Item = (&MethodId, &MethodSpec)> {
        self.specs.iter()
    }
}

/// Merges API state spaces with program-declared `@States("A, B")`
/// annotations (kept independent of `anek-core`, which has its own copy).
pub fn merged_states(units: &[CompilationUnit], api: &ApiRegistry) -> StateRegistry {
    let mut reg = api.states.clone();
    for unit in units {
        for t in &unit.types {
            for ann in &t.annotations {
                if ann.name.simple() == "States" {
                    if let Some(list) = ann.single_string() {
                        reg.insert(StateSpace::parse_decl(&t.name, list));
                    }
                }
            }
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use java_syntax::parse;
    use spec_lang::parse_clause;

    const SRC: &str = r#"class Row {
        @Perm(ensures = "unique(result) in ALIVE")
        Iterator<Integer> createColIter() { return null; }
        void add(int v, Row other) { }
    }"#;

    #[test]
    fn collects_annotations_and_params() {
        let unit = parse(SRC).unwrap();
        let t = SpecTable::from_units(&[unit]);
        assert_eq!(t.len(), 1);
        let spec = t.get(&MethodId::new("Row", "createColIter")).unwrap();
        assert!(!spec.ensures.is_empty());
        assert_eq!(t.param_name(&MethodId::new("Row", "add"), 1).as_deref(), Some("other"));
        assert_eq!(t.param_name(&MethodId::new("Row", "add"), 5), None);
    }

    #[test]
    fn unannotated_table_is_empty_but_knows_params() {
        let unit = parse(SRC).unwrap();
        let t = SpecTable::unannotated(&[unit]);
        assert!(t.is_empty());
        assert!(t.param_name(&MethodId::new("Row", "add"), 0).is_some());
    }

    #[test]
    fn overlay_does_not_clobber_hand_written() {
        let unit = parse(SRC).unwrap();
        let t = SpecTable::from_units(&[unit]);
        let mut inferred = BTreeMap::new();
        inferred.insert(
            MethodId::new("Row", "createColIter"),
            MethodSpec { ensures: parse_clause("pure(result)").unwrap(), ..MethodSpec::default() },
        );
        inferred.insert(
            MethodId::new("Row", "add"),
            MethodSpec { requires: parse_clause("share(this)").unwrap(), ..MethodSpec::default() },
        );
        let merged = t.overlay_inferred(&inferred);
        // Hand-written wins for createColIter…
        let kept = merged.get(&MethodId::new("Row", "createColIter")).unwrap();
        assert_eq!(kept.ensures.to_string(), "unique(result) in ALIVE");
        // …inferred fills the gap for add.
        assert!(merged.get(&MethodId::new("Row", "add")).is_some());
        assert_eq!(merged.len(), 2);
    }
}
