//! The modular typestate checker (the paper's PLURAL [3, 5]).
//!
//! Programs are checked one method at a time against access-permission
//! specifications: a flow-sensitive abstract interpretation over the
//! event-CFG tracks, per tracked object, the held permission kind and the
//! set of abstract states it may be in. Specifications come from the
//! annotated library API and from per-method specs (hand-written or
//! ANEK-inferred). Dynamic state tests (`@TrueIndicates`) refine states
//! branch-sensitively — the branch sensitivity ANEK itself lacks (§4.2).
//!
//! A method boundary with no specification provides only PLURAL's lenient
//! *default* permission — `share` in an unknown state — so ordinary calls
//! stay quiet but protocol-relevant calls (`next()` needs `full` in
//! `HASNEXT`) on unannotated-boundary objects produce warnings. This is
//! what makes Table 2's "Original: 45 warnings" row, and why inferring
//! specifications removes warnings.

use crate::spec_table::SpecTable;
use analysis::cfg::{Cfg, Terminator};
use analysis::events::{Event, EventKind, Operand, Place};
use analysis::types::{Callee, MethodId, ProgramIndex, TypeEnv};
use java_syntax::ast::{CompilationUnit, ExprId};
use java_syntax::Span;
use spec_lang::{
    ApiRegistry, Fraction, MethodSpec, Permission, PermissionKind, SpecTarget, StateRegistry, ALIVE,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::{Duration, Instant};

/// Why a warning fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WarningKind {
    /// No permission was available for a call that requires one.
    NoPermission,
    /// The held permission kind is too weak for the callee's requirement.
    InsufficientPermission,
    /// The object may not be in the state the callee requires.
    WrongState,
    /// A field write through a read-only receiver permission.
    IllegalFieldWrite,
    /// A declared postcondition is not met at method exit.
    PostconditionViolated,
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WarningKind::NoPermission => "no permission",
            WarningKind::InsufficientPermission => "insufficient permission",
            WarningKind::WrongState => "wrong state",
            WarningKind::IllegalFieldWrite => "illegal field write",
            WarningKind::PostconditionViolated => "postcondition violated",
        })
    }
}

/// A checker diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Warning {
    /// The method the warning is in.
    pub method: MethodId,
    /// Source location.
    pub span: Span,
    /// Category.
    pub kind: WarningKind,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}:{}: {}", self.kind, self.method, self.span, self.message)
    }
}

/// The result of checking a program.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// All warnings, in method/program order.
    pub warnings: Vec<Warning>,
    /// Number of method bodies checked.
    pub methods_checked: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl CheckResult {
    /// Warnings of a given kind.
    pub fn of_kind(&self, kind: WarningKind) -> impl Iterator<Item = &Warning> {
        self.warnings.iter().filter(move |w| w.kind == kind)
    }

    /// The set of methods with at least one warning of the given kind, in
    /// deterministic order. The differential oracle (`anek check
    /// --cross-validate`) compares this per-kind verdict set against the
    /// bit-vector checker's.
    pub fn methods_with_warnings(&self, kind: WarningKind) -> BTreeSet<MethodId> {
        self.of_kind(kind).map(|w| w.method.clone()).collect()
    }
}

/// Object identity inside one method: parameters, or the allocation/call
/// site that produced the object. Keying tokens by site keeps them stable
/// across control-flow joins.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Tok {
    Param(String),
    Site(ExprId),
}

/// What the checker knows about one object: a concrete fractional
/// permission (Boyland-style) plus the set of abstract states the object
/// may be in.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PermVal {
    perm: Permission,
    /// Possible abstract states; `None` = unknown (any state).
    states: Option<BTreeSet<String>>,
    type_name: Option<String>,
}

impl PermVal {
    fn kind(&self) -> PermissionKind {
        self.perm.kind
    }

    fn in_state(kind: PermissionKind, state: &str, ty: Option<String>) -> PermVal {
        // Only `unique` owns the whole object; any weaker permission that
        // arrived over a method boundary implicitly left fractions with the
        // caller's other aliases, so claiming fraction 1 would let the
        // split/merge round trip wrongly reconstitute `unique`.
        let fraction = if kind == PermissionKind::Unique { Fraction::ONE } else { Fraction::HALF };
        PermVal {
            perm: Permission::new(kind, fraction).expect("fraction in (0, 1]"),
            states: Some(std::iter::once(state.to_string()).collect()),
            type_name: ty,
        }
    }

    /// The default permission at an unannotated method boundary: a `share`
    /// permission (partial fraction, unknown state).
    fn boundary_default(ty: Option<String>) -> PermVal {
        PermVal {
            perm: Permission::new(PermissionKind::Share, Fraction::HALF)
                .expect("fraction in (0, 1]"),
            states: None,
            type_name: ty,
        }
    }

    /// Whether every possible state refines `wanted`.
    fn state_satisfies(&self, wanted: &str, states: &StateRegistry) -> bool {
        if wanted == ALIVE {
            return true;
        }
        match &self.states {
            None => false,
            Some(set) => {
                let space = self.type_name.as_deref().and_then(|t| states.get(t));
                set.iter().all(|s| match space {
                    Some(space) => space.refines(s, wanted),
                    None => s == wanted,
                })
            }
        }
    }
}

/// Per-point abstract state.
#[derive(Debug, Clone, PartialEq, Default)]
struct AbsState {
    alias: BTreeMap<Place, Tok>,
    perms: BTreeMap<Tok, PermVal>,
}

impl AbsState {
    /// Join of two states (may-analysis over states, must over aliases and
    /// kinds).
    fn join(&self, other: &AbsState) -> AbsState {
        let mut alias = BTreeMap::new();
        for (p, t) in &self.alias {
            if other.alias.get(p) == Some(t) {
                alias.insert(p.clone(), t.clone());
            }
        }
        let mut perms = BTreeMap::new();
        for (t, a) in &self.perms {
            if let Some(b) = other.perms.get(t) {
                // Weaker kind, smaller fraction, union of states: the join
                // must under-approximate what is certainly held.
                let kind = if a.kind().strength_rank() >= b.kind().strength_rank() {
                    a.kind()
                } else {
                    b.kind()
                };
                let fraction = a.perm.fraction.min(b.perm.fraction);
                let states = match (&a.states, &b.states) {
                    (Some(x), Some(y)) => Some(x.union(y).cloned().collect()),
                    _ => None,
                };
                perms.insert(
                    t.clone(),
                    PermVal {
                        perm: Permission::new(kind, fraction)
                            .expect("joined fraction stays in (0, 1]"),
                        states,
                        type_name: a.type_name.clone(),
                    },
                );
            }
        }
        AbsState { alias, perms }
    }
}

/// Checks every method body of `units` against `specs` (program-method
/// specifications; API specs come from `api`).
pub fn check(units: &[CompilationUnit], api: &ApiRegistry, specs: &SpecTable) -> CheckResult {
    let start = Instant::now();
    let index = ProgramIndex::build(units.iter());
    let states = crate::spec_table::merged_states(units, api);
    let mut warnings = Vec::new();
    let mut methods_checked = 0usize;
    for unit in units {
        for t in &unit.types {
            for m in t.methods() {
                if m.body.is_none() {
                    continue;
                }
                methods_checked += 1;
                let id = MethodId::new(&t.name, &m.name);
                let mut env = TypeEnv::for_method(&index, api, &t.name, m);
                let cfg = Cfg::build(m, &mut env);
                let mut checker = MethodChecker {
                    id: id.clone(),
                    api,
                    specs,
                    states: &states,
                    warnings: Vec::new(),
                };
                checker.run(&cfg, m, &id);
                warnings.extend(checker.warnings);
            }
        }
    }
    CheckResult { warnings, methods_checked, elapsed: start.elapsed() }
}

struct MethodChecker<'a> {
    id: MethodId,
    api: &'a ApiRegistry,
    specs: &'a SpecTable,
    states: &'a StateRegistry,
    warnings: Vec<Warning>,
}

impl MethodChecker<'_> {
    fn warn(&mut self, span: Span, kind: WarningKind, message: String) {
        self.warnings.push(Warning { method: self.id.clone(), span, kind, message });
    }

    fn callee_spec(&self, callee: &Callee) -> Option<MethodSpec> {
        match callee {
            Callee::Api { type_name, method } => {
                self.api.get(type_name, method).map(|m| m.spec.clone())
            }
            Callee::Program(id) => self.specs.get(id).cloned(),
            Callee::Unknown { .. } => None,
        }
    }

    fn run(&mut self, cfg: &Cfg, m: &java_syntax::ast::MethodDecl, id: &MethodId) {
        // Entry state from the method's own requires clause.
        let own_spec = self.specs.get(id).cloned().unwrap_or_default();
        let mut entry = AbsState::default();
        let bind_param = |entry: &mut AbsState,
                          name: &str,
                          ty: Option<String>,
                          place: Place,
                          target: &SpecTarget| {
            let tok = Tok::Param(name.to_string());
            entry.alias.insert(place, tok.clone());
            let perm = match own_spec.requires.for_target(target) {
                Some(atom) => PermVal::in_state(atom.kind, atom.effective_state(), ty),
                None => PermVal::boundary_default(ty),
            };
            entry.perms.insert(tok, perm);
        };
        if !m.modifiers.is_static {
            bind_param(&mut entry, "this", Some(id.class.clone()), Place::This, &SpecTarget::This);
        }
        for p in &m.params {
            let ty = analysis::ref_type_name(&p.ty);
            if ty.is_some() {
                bind_param(
                    &mut entry,
                    &p.name,
                    ty,
                    Place::Local(p.name.clone()),
                    &SpecTarget::Param(p.name.clone()),
                );
            }
        }

        // Worklist dataflow to fixpoint.
        let n = cfg.blocks.len();
        let mut in_states: Vec<Option<AbsState>> = vec![None; n];
        in_states[cfg.entry] = Some(entry);
        let mut work: Vec<usize> = vec![cfg.entry];
        let mut exit_states: Vec<AbsState> = Vec::new();
        let mut iterations = 0usize;
        let cap = n * 64 + 256;
        // Collect warnings only on the final pass to avoid duplicates:
        // first run to fixpoint silently, then replay once.
        while let Some(b) = work.pop() {
            iterations += 1;
            if iterations > cap {
                break;
            }
            let Some(state) = in_states[b].clone() else { continue };
            let (out, _w) = self.exec_block(cfg, b, state, false);
            match cfg.blocks[b].term.as_ref().expect("sealed") {
                Terminator::Goto(t) => {
                    if flow(&mut in_states[*t], &out) {
                        work.push(*t);
                    }
                }
                Terminator::Branch { test, then_blk, else_blk } => {
                    let (ts, es) = self.refine(&out, test.as_ref());
                    if flow(&mut in_states[*then_blk], &ts) {
                        work.push(*then_blk);
                    }
                    if flow(&mut in_states[*else_blk], &es) {
                        work.push(*else_blk);
                    }
                }
                Terminator::Return(_) | Terminator::Exit => {}
            }
        }
        // Final pass: emit warnings per block once, on the fixpoint input.
        for (b, in_state) in in_states.iter().enumerate() {
            let Some(state) = in_state.clone() else { continue };
            let (out, _) = self.exec_block(cfg, b, state, true);
            if let Terminator::Return(_) = cfg.blocks[b].term.as_ref().expect("sealed") {
                exit_states.push(out);
            }
        }
        // Own postcondition check.
        for (target, place, name) in own_spec.ensures.atoms.iter().filter_map(|a| match &a.target {
            SpecTarget::This => Some((a, Place::This, "this".to_string())),
            SpecTarget::Param(p) => Some((a, Place::Local(p.clone()), p.clone())),
            SpecTarget::Result => None,
        }) {
            let _ = place;
            for exit in &exit_states {
                let tok = Tok::Param(name.clone());
                match exit.perms.get(&tok) {
                    Some(pv)
                        if pv.kind().satisfies(target.kind)
                            && pv.state_satisfies(target.effective_state(), self.states) => {}
                    _ => {
                        self.warn(
                            m.span,
                            WarningKind::PostconditionViolated,
                            format!("postcondition `{target}` of {} may not hold at exit", self.id),
                        );
                        break;
                    }
                }
            }
        }
    }

    /// Executes a block's events on `state`; returns the out-state. Emits
    /// warnings only when `emit` is true.
    fn exec_block(
        &mut self,
        cfg: &Cfg,
        b: usize,
        mut state: AbsState,
        emit: bool,
    ) -> (AbsState, ()) {
        let events = cfg.blocks[b].events.clone();
        for ev in &events {
            self.exec_event(ev, &mut state, emit);
        }
        (state, ())
    }

    fn tok_of(&self, state: &AbsState, op: &Operand) -> Option<Tok> {
        state.alias.get(&op.place).cloned()
    }

    fn exec_event(&mut self, ev: &Event, state: &mut AbsState, emit: bool) {
        match &ev.kind {
            EventKind::New { type_name, dest, .. } => {
                let tok = Tok::Site(ev.id);
                state.perms.insert(
                    tok.clone(),
                    PermVal {
                        perm: Permission::fresh(),
                        states: Some(std::iter::once(ALIVE.to_string()).collect()),
                        type_name: type_name.clone(),
                    },
                );
                state.alias.insert(dest.clone(), tok);
            }
            EventKind::Call { callee, receiver, args, dest } => {
                let spec = self.callee_spec(callee);
                if let Some(spec) = &spec {
                    // Receiver requirement.
                    if let Some(recv) = receiver {
                        self.check_operand(ev, state, recv, spec, &SpecTarget::This, callee, emit);
                    }
                    // Named argument requirements.
                    if let Callee::Program(id) = callee {
                        for (i, arg) in args.iter().enumerate() {
                            let Some(arg) = arg else { continue };
                            let pname =
                                self.specs.param_name(id, i).unwrap_or_else(|| format!("arg{i}"));
                            self.check_operand(
                                ev,
                                state,
                                arg,
                                spec,
                                &SpecTarget::Param(pname),
                                callee,
                                emit,
                            );
                        }
                    }
                    // Result permission from ensures.
                    if let Some(dest) = dest {
                        let tok = Tok::Site(ev.id);
                        let perm = match spec.ensures.for_target(&SpecTarget::Result) {
                            Some(atom) => PermVal::in_state(
                                atom.kind,
                                atom.effective_state(),
                                dest.type_name.clone(),
                            ),
                            None => PermVal::boundary_default(dest.type_name.clone()),
                        };
                        state.perms.insert(tok.clone(), perm);
                        state.alias.insert(dest.place.clone(), tok);
                    }
                } else if let Some(dest) = dest {
                    // No spec at all: the boundary default applies.
                    let tok = Tok::Site(ev.id);
                    state
                        .perms
                        .insert(tok.clone(), PermVal::boundary_default(dest.type_name.clone()));
                    state.alias.insert(dest.place.clone(), tok);
                }
            }
            EventKind::FieldRead { dest, .. } => {
                // Fields are method-boundary state: without field annotations
                // (outside the subset) the boundary default applies.
                let tok = Tok::Site(ev.id);
                state.perms.insert(tok.clone(), PermVal::boundary_default(dest.type_name.clone()));
                state.alias.insert(dest.place.clone(), tok);
            }
            EventKind::FieldWrite { receiver, .. } => {
                if let Some(tok) = self.tok_of(state, receiver) {
                    if let Some(pv) = state.perms.get(&tok) {
                        if !pv.kind().allows_write() && emit {
                            self.warn(
                                ev.span,
                                WarningKind::IllegalFieldWrite,
                                format!(
                                    "field write through read-only `{}` permission on `{}`",
                                    pv.kind(),
                                    receiver.place
                                ),
                            );
                        }
                    }
                }
            }
            EventKind::Copy { dest, src } => match state.alias.get(&src.place).cloned() {
                Some(tok) => {
                    state.alias.insert(dest.clone(), tok);
                }
                None => {
                    state.alias.remove(dest);
                }
            },
            EventKind::Sync { .. } => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_operand(
        &mut self,
        ev: &Event,
        state: &mut AbsState,
        op: &Operand,
        spec: &MethodSpec,
        target: &SpecTarget,
        callee: &Callee,
        emit: bool,
    ) {
        let Some(atom) = spec.requires.for_target(target).cloned() else {
            return;
        };
        let tok = self.tok_of(state, op);
        let Some(tok) = tok else { return };
        match state.perms.get(&tok) {
            None => {
                if emit {
                    self.warn(
                        ev.span,
                        WarningKind::NoPermission,
                        format!(
                            "call to {callee} requires `{atom}` but no permission is available for `{}`",
                            op.place
                        ),
                    );
                }
            }
            Some(pv) => {
                if !pv.kind().satisfies(atom.kind) {
                    if emit {
                        self.warn(
                            ev.span,
                            WarningKind::InsufficientPermission,
                            format!(
                                "call to {callee} requires `{}` but only `{}` is held for `{}`",
                                atom.kind,
                                pv.kind(),
                                op.place
                            ),
                        );
                    }
                } else if !pv.state_satisfies(atom.effective_state(), self.states) && emit {
                    self.warn(
                        ev.span,
                        WarningKind::WrongState,
                        format!(
                            "call to {callee} requires `{}` in state {} but `{}` may be in {:?}",
                            atom.kind,
                            atom.effective_state(),
                            op.place,
                            pv.states
                                .clone()
                                .map(|s| s.into_iter().collect::<Vec<_>>())
                                .unwrap_or_else(|| vec!["<unknown>".into()])
                        ),
                    );
                }
                // Post-call update: lend the required permission through the
                // Boyland split/merge round trip (the fraction algebra
                // guarantees the caller gets its strength back), and take
                // the object's state from the callee's ensures.
                let ensured = spec.ensures.for_target(target).cloned();
                if let Some(pv) = state.perms.get_mut(&tok) {
                    if let Ok((retained, lent)) = pv.perm.split(atom.kind) {
                        pv.perm =
                            retained.merge(lent).expect("split halves re-merge within the whole");
                    }
                    if let Some(ens) = ensured {
                        pv.states =
                            Some(std::iter::once(ens.effective_state().to_string()).collect());
                    }
                }
            }
        }
    }

    /// Branch refinement from dynamic state tests.
    fn refine(
        &self,
        state: &AbsState,
        test: Option<&analysis::cfg::BranchTest>,
    ) -> (AbsState, AbsState) {
        let mut t = state.clone();
        let mut e = state.clone();
        let Some(test) = test else { return (t, e) };
        let Some(spec) = self.callee_spec(&test.callee) else { return (t, e) };
        let Some(tok) = state.alias.get(&test.operand.place).cloned() else {
            return (t, e);
        };
        let (true_state, false_state) = if test.negated {
            (&spec.false_indicates, &spec.true_indicates)
        } else {
            (&spec.true_indicates, &spec.false_indicates)
        };
        if let Some(s) = true_state {
            if let Some(pv) = t.perms.get_mut(&tok) {
                pv.states = Some(std::iter::once(s.clone()).collect());
            }
        }
        if let Some(s) = false_state {
            if let Some(pv) = e.perms.get_mut(&tok) {
                pv.states = Some(std::iter::once(s.clone()).collect());
            }
        }
        (t, e)
    }
}

/// Joins `new` into the slot; returns true if the slot changed.
fn flow(slot: &mut Option<AbsState>, new: &AbsState) -> bool {
    match slot {
        None => {
            *slot = Some(new.clone());
            true
        }
        Some(old) => {
            let joined = old.join(new);
            if &joined != old {
                *slot = Some(joined);
                true
            } else {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_table::SpecTable;
    use java_syntax::parse;
    use spec_lang::standard_api;

    fn check_src(src: &str) -> CheckResult {
        let unit = parse(src).unwrap();
        let api = standard_api();
        let specs = SpecTable::from_units(std::slice::from_ref(&unit));
        check(&[unit], &api, &specs)
    }

    #[test]
    fn correct_loop_use_verifies_clean() {
        let r = check_src(
            r#"class App {
                void m(Collection<Integer> c) {
                    Iterator<Integer> it = c.iterator();
                    while (it.hasNext()) { it.next(); }
                }
            }"#,
        );
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
        assert_eq!(r.methods_checked, 1);
    }

    #[test]
    fn next_without_hasnext_warns_wrong_state() {
        let r = check_src(
            r#"class App {
                void m(Collection<Integer> c) {
                    Iterator<Integer> it = c.iterator();
                    it.next();
                }
            }"#,
        );
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::WrongState);
    }

    #[test]
    fn if_guarded_next_is_clean_but_following_next_warns() {
        let r = check_src(
            r#"class App {
                void m(Collection<Integer> c) {
                    Iterator<Integer> it = c.iterator();
                    if (it.hasNext()) {
                        it.next();
                        it.next();
                    }
                }
            }"#,
        );
        // First next() is fine (HASNEXT via the test); the second warns
        // because next() returns the iterator to ALIVE.
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::WrongState);
    }

    #[test]
    fn negated_test_refines_else_branch() {
        let r = check_src(
            r#"class App {
                void m(Collection<Integer> c) {
                    Iterator<Integer> it = c.iterator();
                    if (!it.hasNext()) {
                        int x = 0;
                    } else {
                        it.next();
                    }
                }
            }"#,
        );
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn unannotated_helper_boundary_warns_no_permission() {
        // The Table 2 "Original" scenario: an iterator crossing an
        // unannotated method boundary has no permission at the use site.
        let r = check_src(
            r#"class Row {
                Collection<Integer> entries;
                Iterator<Integer> createColIter() { return entries.iterator(); }
            }
            class App {
                void use(Row r) {
                    Iterator<Integer> it = r.createColIter();
                    while (it.hasNext()) { it.next(); }
                }
            }"#,
        );
        assert!(
            r.warnings.iter().any(|w| w.kind == WarningKind::InsufficientPermission),
            "{:?}",
            r.warnings
        );
        // The boundary default is `share`, so only the protocol-relevant
        // `next()` warns — `hasNext()` (pure) stays quiet.
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
    }

    #[test]
    fn annotated_helper_boundary_is_clean() {
        let r = check_src(
            r#"class Row {
                Collection<Integer> entries;
                @Perm(ensures = "unique(result) in ALIVE")
                Iterator<Integer> createColIter() { return entries.iterator(); }
            }
            class App {
                void use(Row r) {
                    Iterator<Integer> it = r.createColIter();
                    while (it.hasNext()) { it.next(); }
                }
            }"#,
        );
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn annotated_param_requirement_enforced_at_caller() {
        let r = check_src(
            r#"class App {
                @Perm(requires = "full(it) in HASNEXT")
                void step(Iterator<Integer> it) { it.next(); }
                void good(Collection<Integer> c) {
                    Iterator<Integer> it = c.iterator();
                    if (it.hasNext()) { step(it); }
                }
                void bad(Collection<Integer> c) {
                    Iterator<Integer> it = c.iterator();
                    step(it);
                }
            }"#,
        );
        // Only `bad` should warn (wrong state on the `it` argument).
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].method, MethodId::new("App", "bad"));
    }

    #[test]
    fn loop_reaches_fixpoint_and_stays_clean() {
        let r = check_src(
            r#"class App {
                void m(Collection<Integer> c, boolean cond) {
                    Iterator<Integer> it = c.iterator();
                    while (it.hasNext()) {
                        if (cond) { it.next(); } else { it.next(); }
                    }
                }
            }"#,
        );
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn stream_protocol_close_then_read_warns() {
        let r = check_src(
            r#"class App {
                void m(StreamFactory f) {
                    Stream s = f.open();
                    s.read();
                    s.close();
                    s.read();
                }
            }"#,
        );
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::WrongState);
    }

    #[test]
    fn postcondition_violation_detected() {
        let r = check_src(
            r#"class App {
                @Perm(requires = "full(s) in OPEN", ensures = "full(s) in OPEN")
                void keepOpen(Stream s) {
                    s.close();
                }
            }"#,
        );
        assert!(
            r.warnings.iter().any(|w| w.kind == WarningKind::PostconditionViolated),
            "{:?}",
            r.warnings
        );
    }

    #[test]
    fn close_in_finally_verifies() {
        // The classic typestate idiom: the stream is closed on every path.
        let r = check_src(
            r#"class App {
                void ship(StreamFactory f) {
                    Stream s = f.open();
                    try {
                        s.read();
                        s.read();
                    } finally {
                        s.close();
                    }
                }
            }"#,
        );
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn read_after_try_close_warns() {
        let r = check_src(
            r#"class App {
                void bad(StreamFactory f) {
                    Stream s = f.open();
                    try {
                        s.read();
                    } finally {
                        s.close();
                    }
                    s.read();
                }
            }"#,
        );
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::WrongState);
    }

    #[test]
    fn catch_path_joins_conservatively() {
        // The catch handler starts from try-entry state; using the stream
        // there is fine while it is still OPEN.
        let r = check_src(
            r#"class App {
                void recover(StreamFactory f) {
                    Stream s = f.open();
                    try {
                        s.read();
                    } catch (IOException e) {
                        s.read();
                    }
                    s.close();
                }
            }"#,
        );
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn do_while_first_iteration_checked() {
        // A do-while calls next() before any hasNext() — the first
        // iteration is unguarded and must warn.
        let r = check_src(
            r#"class App {
                void m(Collection<Integer> c) {
                    Iterator<Integer> it = c.iterator();
                    do {
                        it.next();
                    } while (it.hasNext());
                }
            }"#,
        );
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::WrongState);
    }

    #[test]
    fn switch_paths_join_conservatively() {
        // One switch arm closes the stream; after the join the state is
        // {OPEN, CLOSED} and a read may fail.
        let r = check_src(
            r#"class App {
                void m(StreamFactory f, int x) {
                    Stream s = f.open();
                    switch (x) {
                        case 1:
                            s.close();
                            break;
                        default:
                            s.read();
                    }
                    s.read();
                }
            }"#,
        );
        assert!(
            r.warnings.iter().any(|w| w.kind == WarningKind::WrongState),
            "read after possibly-closed must warn: {:?}",
            r.warnings
        );
    }

    #[test]
    fn nested_loops_and_branches_terminate_and_verify() {
        let r = check_src(
            r#"class App {
                void m(Collection<Integer> c, boolean flag) {
                    for (int i = 0; i < 10; i++) {
                        Iterator<Integer> it = c.iterator();
                        while (it.hasNext()) {
                            if (flag) {
                                it.next();
                            } else {
                                do {
                                    it.next();
                                } while (it.hasNext());
                            }
                        }
                    }
                }
            }"#,
        );
        // The do-while's first next() is guarded by the enclosing while's
        // hasNext(), so everything verifies.
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn try_inside_loop_reopens_each_iteration() {
        let r = check_src(
            r#"class App {
                void m(StreamFactory f, int n) {
                    for (int i = 0; i < n; i++) {
                        Stream s = f.open();
                        try {
                            s.read();
                        } finally {
                            s.close();
                        }
                    }
                }
            }"#,
        );
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn switch_fallthrough_sees_earlier_case_effects() {
        // case 1 closes and falls through into case 2's read: must warn.
        let r = check_src(
            r#"class App {
                void m(StreamFactory f, int x) {
                    Stream s = f.open();
                    switch (x) {
                        case 1:
                            s.close();
                        case 2:
                            s.read();
                            break;
                        default:
                            s.close();
                    }
                }
            }"#,
        );
        assert!(
            r.warnings.iter().any(|w| w.kind == WarningKind::WrongState),
            "fallthrough read-after-close must warn: {:?}",
            r.warnings
        );
    }

    #[test]
    fn fresh_object_survives_borrow_round_trip() {
        // A fresh (unique) stream lent as `full` to read() must come back
        // unique via fraction merging — a later callee demanding `unique`
        // would otherwise fail.
        let r = check_src(
            r#"class App {
                @Perm(requires = "unique(s) in OPEN")
                void consume(Stream s) { s.read(); }
                void m(StreamFactory f) {
                    Stream s = f.open();
                    s.read();
                    consume(s);
                }
            }"#,
        );
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn boundary_share_never_promotes_to_unique() {
        // A boundary-default share must not sneak up to unique through the
        // split/merge round trip.
        let r = check_src(
            r#"class App {
                @Perm(requires = "unique(s) in OPEN")
                void consume(Stream s) { s.read(); }
                void m(Stream s) {
                    s.read();
                    consume(s);
                }
            }"#,
        );
        assert_eq!(r.warnings.len(), 2, "{:?}", r.warnings);
        // s.read(): share satisfies full? no -> insufficient; consume: needs
        // unique -> insufficient.
        assert!(r.warnings.iter().all(|w| w.kind == WarningKind::InsufficientPermission));
    }

    #[test]
    fn field_write_through_pure_warns() {
        let r = check_src(
            r#"class Row {
                Collection<Integer> entries;
                @Perm(requires = "pure(this)")
                void sneaky(Collection<Integer> c) {
                    this.entries = c;
                }
            }"#,
        );
        assert_eq!(r.warnings.len(), 1, "{:?}", r.warnings);
        assert_eq!(r.warnings[0].kind, WarningKind::IllegalFieldWrite);
    }
}
