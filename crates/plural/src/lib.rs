//! # plural
//!
//! The PLURAL modular typestate checker (Bierhoff & Aldrich \[5\]) that the
//! reproduced paper (Beckman & Nori, PLDI 2011) targets: given
//! access-permission specifications — hand-written or ANEK-inferred —
//! [`check`] verifies each method body in isolation and reports protocol
//! warnings. Also included: PLURAL's local fractional-permission inference
//! by Gaussian elimination ([`local_infer()`](local_infer::local_infer)), the Table 3 baseline.
//!
//! ## Example
//!
//! ```
//! use plural::{check, SpecTable};
//! use spec_lang::standard_api;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = java_syntax::parse(
//!     "class App { void m(Collection<Integer> c) { c.iterator().next(); } }",
//! )?;
//! let api = standard_api();
//! let specs = SpecTable::from_units(std::slice::from_ref(&unit));
//! let result = check(&[unit], &api, &specs);
//! assert_eq!(result.warnings.len(), 1); // next() without hasNext()
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod checker;
pub mod linalg;
pub mod local_infer;
pub mod sparse;
pub mod spec_table;

pub use checker::{check, CheckResult, Warning, WarningKind};
pub use linalg::{solve, Matrix, Solution};
pub use local_infer::{local_infer, local_infer_pfg, LocalInference};
pub use sparse::{solve_sparse, SignedFrac, SparseRow, SparseSolution};
pub use spec_table::{merged_states, SpecTable};
